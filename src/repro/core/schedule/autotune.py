"""Autoscheduling: search the fusion-granularity design space automatically.

The paper leaves autoscheduling as future work ("future work includes
autoscheduling to determine fusion schedules for common sparse ML patterns",
Section 4.2) but ships the two ingredients: a schedule space (contiguous
partitions of the statement list into fusion regions) and a fast analytical
heuristic for pruning (Section 7).  This module composes them:

1. enumerate candidate fusion schedules (all contiguous partitions up to a
   budget, or user-supplied candidates),
2. rank them with the FLOPs/bytes heuristic under a machine roofline,
3. simulate only the top-k survivors and return the measured winner.

This mirrors the paper's design-space-exploration methodology (56
configurations, heuristic pruning of suboptimal ones).
"""

from __future__ import annotations

import itertools
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ...comal.machines import Machine, RDA_MACHINE
from ...driver.executable import Executable
from ...driver.session import Session
from ...driver.sweeping import sweep_schedules
from ..einsum.ast import EinsumProgram
from ..heuristic.model import FusionHeuristic, TensorStats
from ..heuristic.prune import roofline_score
from .schedule import Schedule, fused_groups
from .split import validate_split_item


@dataclass
class TunedSchedule:
    """Outcome of one autotuning run."""

    best: Schedule
    measured_cycles: float
    candidates_considered: int
    candidates_simulated: int
    ranking: List[Tuple[str, float]] = field(default_factory=list)
    # The winner's compiled form, served from the session cache (no extra
    # lowering beyond the simulation that measured it).
    executable: Optional[Executable] = None
    # Size of the full contiguous-partition space (2^(n-1)) and how many
    # of those partitions the enumeration cap dropped.  Non-zero drops mean
    # the search was bounded — the kept subset is deterministic (balanced
    # boundary-count layers from both granularity ends, lexicographic cut
    # positions within a layer), but the winner is only best *within* it.
    partition_space: int = 0
    partitions_dropped: int = 0
    # Which ``SearchStrategy`` produced this result ("exhaustive" is the
    # classic enumerate-rank-simulate path), how many simulations the
    # search actually spent, and the step-by-step trace of every evaluated
    # schedule (JSON-safe dicts; identical across runs for a fixed seed).
    strategy: str = "exhaustive"
    evaluations: int = 0
    search_trace: List[Dict[str, object]] = field(default_factory=list)


def partition_space_size(n: int) -> int:
    """Size of the contiguous-partition schedule space: ``2**(n-1)``."""
    return 1 << (n - 1) if n > 0 else 0


#: (n, max_partitions) pairs whose truncation has already been warned
#: about.  Every tier-1 autotune run over the same model hits the same
#: cap; repeating the identical warning per run drowns real ones, so it
#: fires once per distinct truncation per process (the drop count is
#: still reported on every run via ``TunedSchedule.partitions_dropped``).
_TRUNCATION_WARNED: set = set()


def reset_truncation_warnings() -> None:
    """Forget which truncations have warned (tests assert the warning)."""
    _TRUNCATION_WARNED.clear()


def contiguous_partitions(n: int, max_partitions: int = 256) -> List[List[List[int]]]:
    """All contiguous partitions of ``range(n)`` (up to ``max_partitions``).

    Fusion regions must respect program order, so the schedule space is the
    2^(n-1) ways of placing region boundaries between consecutive
    statements.  The cap keeps enumeration tractable for big models.

    The kept subset under the cap is deterministic and documented:
    partitions are enumerated by boundary-count layers taken alternately
    from the two ends of the granularity spectrum — fully fused (0
    boundaries) first, fully unfused (n-1 boundaries) second, then 1
    boundary, n-2 boundaries, and so on inward — with lexicographic cut
    positions inside each layer.  Any cap >= 2 therefore keeps *both*
    baseline schedules; a one-ended order (the pre-balanced behaviour,
    coarsest first) silently dropped the unfused fallback exactly on the
    programs where coarse fusion is infeasible, e.g. when
    ``enumerate_schedules`` divides ``max_candidates`` across a split
    axis.  Truncation is *surfaced*, not silent: a :class:`UserWarning`
    is emitted here, and :func:`autotune` reports the drop count in
    :attr:`TunedSchedule.partitions_dropped`.
    """
    partitions: List[List[List[int]]] = []
    boundaries = list(range(1, n))
    truncated = False
    # Boundary-count layers, alternating coarse/fine ends: 0, n-1, 1, n-2…
    layers: List[int] = []
    lo, hi = 0, n - 1
    while lo <= hi:
        layers.append(lo)
        if hi != lo:
            layers.append(hi)
        lo, hi = lo + 1, hi - 1
    for k in layers:
        for cut in itertools.combinations(boundaries, k):
            edges = [0, *cut, n]
            partitions.append(
                [list(range(a, b)) for a, b in zip(edges, edges[1:])]
            )
            if len(partitions) >= max_partitions:
                truncated = True
                break
        if truncated:
            break
    total = partition_space_size(n)
    if (
        truncated
        and total > len(partitions)
        and (n, max_partitions) not in _TRUNCATION_WARNED
    ):
        _TRUNCATION_WARNED.add((n, max_partitions))
        warnings.warn(
            f"contiguous_partitions: kept {len(partitions)} of {total} "
            f"partitions (enumeration cap {max_partitions} — from "
            "max_candidates split across the split axis when called via "
            "enumerate_schedules/autotune); the kept subset is "
            "deterministic (boundary-count layers taken alternately from "
            "the coarse and fine ends, lexicographic cuts — both the "
            "fully-fused and fully-unfused baselines always survive) "
            "but the schedule space is no longer exhaustive",
            stacklevel=2,
        )
    return partitions


def _split_suffix(config: Mapping[str, int]) -> str:
    """Stable schedule-name suffix for one split configuration."""
    if not config:
        return ""
    inner = ",".join(f"{idx}={tiles}" for idx, tiles in sorted(config.items()))
    return f"+split({inner})"


def _dedupe_configs(
    splits: Optional[Sequence[Mapping[str, int]]],
) -> List[Dict[str, int]]:
    """The split-axis configurations, unsplit first, duplicates dropped.

    The exact no-op tile count 1 is normalized away (the split-indices
    pass no-ops it), so ``{'x1': 1}`` collapses into the unsplit baseline
    instead of consuming candidate budget on a byte-identical duplicate.
    Invalid counts (< 1) raise — the same loud rejection
    ``Schedule.validate``/``SweepPoint.validate`` give them — rather than
    silently degrading the search to fusion-only.
    """
    configs: List[Dict[str, int]] = [{}]
    for config in splits or ():
        for idx, tiles in config.items():
            validate_split_item(idx, tiles)
        frozen = {idx: tiles for idx, tiles in config.items() if tiles > 1}
        if frozen and frozen not in configs:
            configs.append(frozen)
    return configs


def _enumeration_plan(
    n: int,
    max_candidates: int,
    splits: Optional[Sequence[Mapping[str, int]]],
) -> Tuple[List[Dict[str, int]], int, int]:
    """Shared budget arithmetic for the (partition × split-config) space.

    The single source of truth behind both :func:`enumerate_schedules`
    (which enumerates) and :func:`autotune` (which reports the drop count)
    — duplicating the integer division in two places is how the reported
    numbers drift from the enumerated ones.

    Returns
    -------
    tuple
        ``(configs, kept_partitions, partitions_dropped)``: the deduped
        split configurations (unsplit first), how many contiguous
        partitions fit the ``max_candidates`` budget, and how many of the
        full 2^(n-1) space that leaves out.
    """
    configs = _dedupe_configs(splits)
    per_partition = max(1, max_candidates // len(configs))
    space = partition_space_size(n)
    kept = min(per_partition, space)
    return configs, kept, space - kept


def enumerate_schedules(
    program: EinsumProgram,
    max_candidates: int = 64,
    splits: Optional[Sequence[Mapping[str, int]]] = None,
) -> List[Schedule]:
    """Candidate schedules: contiguous fusion partitions × split configs.

    Parameters
    ----------
    program:
        The program whose statements are partitioned.
    max_candidates:
        Cap on the *total* candidate count (partitions × split configs).
    splits:
        Optional split-axis configurations (index variable -> tile count);
        each fusion partition is paired with every config, so the
        autotuner co-optimizes tiling against fusion granularity.  The
        empty config (no splitting) is always included first, and
        duplicate configs are dropped.  ``None`` enumerates fusion only.
    """
    n = len(program.statements)
    configs, kept_partitions, _ = _enumeration_plan(n, max_candidates, splits)
    schedules: List[Schedule] = []
    for i, partition in enumerate(contiguous_partitions(n, kept_partitions)):
        base = f"auto-{i}" if len(partition) not in (1, n) else (
            "auto-fully-fused" if len(partition) == 1 else "auto-unfused"
        )
        for config in configs:
            if len(schedules) >= max_candidates:
                # Only reachable when max_candidates < len(configs): the
                # budget cannot even cover one partition's split variants.
                # Surface it — the module contract is that truncation is
                # never silent.
                warnings.warn(
                    f"enumerate_schedules: candidate cap {max_candidates} "
                    f"cannot cover the {len(configs)} split configuration(s) "
                    "of a single fusion partition; trailing configs were "
                    "dropped (raise max_candidates)",
                    stacklevel=2,
                )
                return schedules
            schedule = fused_groups(
                program, partition, name=base + _split_suffix(config)
            )
            schedule.splits = dict(config)
            schedules.append(schedule)
    return schedules


def autotune(
    program: EinsumProgram,
    binding: Dict[str, object],
    stats: Dict[str, TensorStats],
    candidates: Sequence[Schedule] | None = None,
    machine: Machine | None = None,
    simulate_top: int = 3,
    max_candidates: int = 64,
    session: Session | None = None,
    splits: Optional[Sequence[Mapping[str, int]]] = None,
    strategy: str = "exhaustive",
    budget: Optional[int] = None,
    cost_model: Optional[object] = None,
    seed: int = 0,
    par_options: Optional[Sequence[Mapping[str, int]]] = None,
    model_name: Optional[str] = None,
    backend: Optional[str] = None,
) -> TunedSchedule:
    """Pick the best schedule via guided search + simulation.

    Candidate schedules that fail to compile (infeasible streaming under the
    POG) are skipped — an unfused boundary always exists as a fallback.

    Compilation goes through ``session`` (a fresh one per call by default):
    every simulated candidate lands in the session's compile cache, so the
    returned winner's :attr:`TunedSchedule.executable` — and any later
    ``session.compile`` of the tuned schedule — costs no further lowering.
    Guided strategies revisit points across search steps; revisits are
    compile-cache hits, not recompiles.

    ``strategy`` picks a registered
    :class:`~repro.core.schedule.search.SearchStrategy`: ``"exhaustive"``
    (enumerate → rank → simulate top-k; the classic path), ``"beam"``, or
    ``"evolutionary"`` (local-move search guided by ``cost_model``).
    ``budget`` caps *successful* simulations — the same convention as
    ``sweep_schedules(limit=...)``; it defaults to ``simulate_top``.
    ``cost_model`` is any
    :class:`~repro.core.heuristic.costmodel.CostModel` (default: the raw
    analytical heuristic; pass a fitted
    :class:`~repro.core.heuristic.costmodel.CalibratedCostModel` to rank
    with per-model corrections).  ``seed`` makes stochastic strategies
    reproducible: identical invocations produce identical
    :attr:`TunedSchedule.search_trace` lists.

    ``splits`` adds a bounded index-splitting axis (ignored when explicit
    ``candidates`` are given) and ``par_options`` a parallelization axis
    (guided strategies only): the search co-optimizes both against fusion
    granularity.  The analytical heuristic does not model tiling, so split
    variants of a partition tie on their estimate and the simulation stage
    is what separates them — raise ``simulate_top``/``budget`` accordingly
    when sweeping splits.

    Enumeration truncation is surfaced, never silent: when the
    ``max_candidates`` cap drops contiguous partitions, the drop count
    lands in :attr:`TunedSchedule.partitions_dropped` (and
    ``contiguous_partitions`` warns); the kept subset is deterministic and
    always retains the fully-fused and fully-unfused baselines.

    ``backend`` selects the execution backend candidate simulations run on
    (``"interp"``/``"columnar"``/``"codegen"`` — all bit-exact, so the
    winner is backend-independent but the search wall time is not); it is
    threaded into the default session and recorded in every
    ``search_trace`` entry.  Incompatible with an explicit ``session``,
    which fixes its own backend.
    """
    if session is None:
        session = Session(machine=machine or RDA_MACHINE, backend=backend)
    elif backend is not None:
        raise ValueError(
            "autotune(backend=...) conflicts with an explicit session; "
            "construct the Session with backend=... instead"
        )
    machine = machine or session.machine
    if candidates:
        # Explicit candidate lists bypass the search space: rank and
        # simulate exactly what the caller supplied (legacy path).
        return _tune_candidates(
            program, binding, stats, list(candidates), machine,
            simulate_top if budget is None else budget, session,
        )
    # Lazy import: search imports this module for the exhaustive strategy.
    from ..heuristic.costmodel import HeuristicCostModel
    from .search import SearchTask, get_strategy

    runner = get_strategy(strategy)
    task = SearchTask(
        program=program,
        binding=binding,
        stats=stats,
        machine=machine,
        session=session,
        cost_model=cost_model or HeuristicCostModel(),
        budget=simulate_top if budget is None else budget,
        seed=seed,
        model_name=model_name,
        splits=splits,
        par_options=par_options,
        max_candidates=max_candidates,
    )
    outcome = runner.run(task)
    winner = session.compile(program, outcome.best)  # cache hit
    winner = _rebind(winner, machine)
    return TunedSchedule(
        best=outcome.best,
        measured_cycles=outcome.measured_cycles,
        candidates_considered=outcome.candidates_considered,
        candidates_simulated=outcome.evaluations,
        ranking=outcome.ranking,
        executable=winner,
        partition_space=outcome.partition_space,
        partitions_dropped=outcome.partitions_dropped,
        strategy=runner.name,
        evaluations=outcome.evaluations,
        search_trace=outcome.trace,
    )


def _tune_candidates(
    program: EinsumProgram,
    binding: Dict[str, object],
    stats: Dict[str, TensorStats],
    candidates: List[Schedule],
    machine: Machine,
    simulate_top: int,
    session: Session,
) -> TunedSchedule:
    """Rank and simulate an explicit candidate list (pre-search semantics)."""
    heuristic = FusionHeuristic(program, stats)
    scored: List[Tuple[float, Schedule]] = []
    for schedule in candidates:
        try:
            estimate = heuristic.estimate(schedule)
        except Exception:
            continue
        scored.append((roofline_score(estimate, machine), schedule))
    scored.sort(key=lambda pair: pair[0])

    # The simulate-top-k stage is an in-process schedule sweep: infeasible
    # candidates are skipped without consuming budget (an unfused boundary
    # always exists as a fallback).
    runs = sweep_schedules(
        session,
        program,
        binding,
        [schedule for _, schedule in scored],
        machine=machine,
        limit=simulate_top,
        skip_errors=True,
    )
    simulated = len(runs)
    ranking: List[Tuple[str, float]] = [(r.schedule.name, r.cycles) for r in runs]
    best_schedule: Optional[Schedule] = None
    best_cycles = float("inf")
    for run in runs:
        if run.cycles < best_cycles:
            best_cycles = run.cycles
            best_schedule = run.schedule
    if best_schedule is None:
        raise RuntimeError("no candidate schedule could be compiled and run")
    winner = _rebind(session.compile(program, best_schedule), machine)
    return TunedSchedule(
        best=best_schedule,
        measured_cycles=best_cycles,
        candidates_considered=len(scored),
        candidates_simulated=simulated,
        ranking=ranking,
        executable=winner,
        strategy="exhaustive",
        evaluations=simulated,
    )


def _rebind(winner: Executable, machine: Machine) -> Executable:
    """Bind a cached executable to the machine the tuning measured on.

    The caller may have paired an explicit machine with a session built
    for a different one; the rebound handle shares the cached compile
    artifacts.
    """
    if winner.machine is machine:
        return winner
    return Executable(
        winner.compiled,
        machine,
        winner.diagnostics,
        winner.fingerprint,
        columnar=winner.columnar,
        debug_streams=winner.debug_streams,
        sim_cache=winner.sim_cache,
        backend=winner.backend,
    )
