"""Calibrated cost models for guided schedule search.

The analytical :class:`~repro.core.heuristic.model.FusionHeuristic` plus
:func:`~repro.core.heuristic.prune.roofline_score` is fast and monotone
enough to *rank* fusion granularities, but it does not model tiling or
parallelization and its absolute cycle predictions drift per model.  The
repo already accumulates ground truth — sweep ``ResultStore`` JSONL files
and ``BENCH_*.json`` payloads carry measured cycles next to the full
schedule point — so this module closes the loop:

* :class:`HeuristicCostModel` — the raw analytical predictor, packaged
  behind the same :class:`CostModel` protocol the search strategies use.
* :class:`CalibratedCostModel` — per-model-name linear correction terms
  over log-space features of the analytical estimate, fitted with pure
  numpy least squares (``np.linalg.lstsq``; no new dependencies) from
  recorded sweeps.  Because the raw roofline score is itself feature 0
  and an intercept is included, the fitted model's training error can
  never exceed the raw heuristic's — calibration is monotone improvement
  by construction.

Artifacts are versioned JSON (:data:`COSTMODEL_VERSION`) and bit-stable:
``fit`` → ``save`` → ``load`` → ``save`` produces byte-identical files
(Python's ``json`` round-trips ``float`` shortest-repr exactly and keys
are sorted).
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ...comal.machines import Machine
from ..einsum.ast import EinsumProgram
from ..schedule.schedule import Schedule
from .model import FusionHeuristic, TensorStats
from .prune import roofline_score

COSTMODEL_VERSION = 1

#: Feature names, in column order.  ``log_score`` first is load-bearing:
#: it makes the raw heuristic a point inside the fitted model's
#: hypothesis space (weights ``[1, 0, …, 0]``), so least squares can
#: only match or beat it on the training records.
FEATURE_NAMES: Tuple[str, ...] = (
    "log_score",
    "log_flops",
    "log_dram_bytes",
    "n_regions",
    "log_split_product",
    "log_par_product",
    "intercept",
)

#: Key under which the cross-model fallback coefficients are stored.
GLOBAL_KEY = "*"


class CostModelError(RuntimeError):
    """Raised for malformed cost-model artifacts or unusable records."""


def _log1p(x: float) -> float:
    return math.log1p(max(0.0, float(x)))


class CostModel:
    """Protocol for search-time cycle predictors.

    ``predict`` returns an *ordering* signal in predicted cycles; the
    search strategies only compare predictions against each other, so any
    strictly monotone transform of true cycles is a valid model.
    """

    def predict(
        self,
        program: EinsumProgram,
        schedule: Schedule,
        stats: Mapping[str, TensorStats],
        machine: Machine,
        model_name: Optional[str] = None,
    ) -> float:
        raise NotImplementedError


class HeuristicCostModel(CostModel):
    """The analytical FLOPs/bytes heuristic behind the CostModel protocol.

    A per-``(program, scratchpad)`` :class:`FusionHeuristic` is cached so
    a search evaluating hundreds of neighbors pays the per-program setup
    once, and per-schedule estimates are memoized by content fingerprint
    (local moves revisit schedules; the heuristic is pure).
    """

    def __init__(self) -> None:
        self._heuristics: Dict[Tuple[int, Optional[int]], FusionHeuristic] = {}
        self._scores: Dict[Tuple[int, Optional[int], str, str], float] = {}

    def features(
        self,
        program: EinsumProgram,
        schedule: Schedule,
        stats: Mapping[str, TensorStats],
        machine: Machine,
    ) -> List[float]:
        """The calibration feature vector (see :data:`FEATURE_NAMES`)."""
        key = (id(program), machine.scratchpad_bytes)
        heuristic = self._heuristics.get(key)
        if heuristic is None:
            heuristic = FusionHeuristic(
                program, dict(stats), scratchpad_bytes=machine.scratchpad_bytes
            )
            self._heuristics[key] = heuristic
        estimate = heuristic.estimate(schedule)
        score = roofline_score(estimate, machine)
        split_product = 1.0
        for tiles in schedule.splits.values():
            if tiles > 1:
                split_product *= tiles
        par_product = 1.0
        for factor in schedule.par.values():
            if factor > 1:
                par_product *= factor
        return [
            _log1p(score),
            _log1p(estimate.flops),
            _log1p(estimate.dram_bytes),
            float(len(schedule.regions)),
            math.log(split_product),
            math.log(par_product),
            1.0,
        ]

    def predict(
        self,
        program: EinsumProgram,
        schedule: Schedule,
        stats: Mapping[str, TensorStats],
        machine: Machine,
        model_name: Optional[str] = None,
    ) -> float:
        key = (
            id(program),
            machine.scratchpad_bytes,
            machine.name,
            schedule.fingerprint(),
        )
        cached = self._scores.get(key)
        if cached is None:
            cached = math.expm1(
                self.features(program, schedule, stats, machine)[0]
            )
            self._scores[key] = cached
        return cached


@dataclass
class FittedTerms:
    """Least-squares correction coefficients for one model name."""

    weights: List[float]
    records: int
    rmse: float
    raw_rmse: float

    def to_record(self) -> Dict[str, object]:
        return {
            "weights": list(self.weights),
            "records": self.records,
            "rmse": self.rmse,
            "raw_rmse": self.raw_rmse,
        }

    @classmethod
    def from_record(cls, record: Mapping[str, object]) -> "FittedTerms":
        return cls(
            weights=[float(w) for w in record["weights"]],
            records=int(record["records"]),
            rmse=float(record["rmse"]),
            raw_rmse=float(record["raw_rmse"]),
        )


@dataclass
class CalibrationRecord:
    """One ground-truth observation: a schedule point and measured cycles."""

    model_name: str
    program: EinsumProgram
    schedule: Schedule
    stats: Mapping[str, TensorStats]
    machine: Machine
    cycles: float


class CalibratedCostModel(CostModel):
    """Per-model linear correction over analytical log-space features.

    ``fit`` solves one least-squares system per distinct model name (plus
    a pooled :data:`GLOBAL_KEY` fallback used for unseen names); target is
    ``log1p(measured cycles)``.  ``predict`` falls back to the raw
    heuristic when nothing was fitted at all.
    """

    def __init__(
        self,
        terms: Optional[Dict[str, FittedTerms]] = None,
        base: Optional[HeuristicCostModel] = None,
    ) -> None:
        self.terms: Dict[str, FittedTerms] = dict(terms or {})
        self.base = base or HeuristicCostModel()

    # ------------------------------------------------------------------
    # Prediction
    # ------------------------------------------------------------------
    def _terms_for(self, model_name: Optional[str]) -> Optional[FittedTerms]:
        if model_name is not None and model_name in self.terms:
            return self.terms[model_name]
        return self.terms.get(GLOBAL_KEY)

    def predict(
        self,
        program: EinsumProgram,
        schedule: Schedule,
        stats: Mapping[str, TensorStats],
        machine: Machine,
        model_name: Optional[str] = None,
    ) -> float:
        terms = self._terms_for(model_name)
        if terms is None:
            return self.base.predict(
                program, schedule, stats, machine, model_name
            )
        features = self.base.features(program, schedule, stats, machine)
        log_cycles = sum(w * f for w, f in zip(terms.weights, features))
        # The roofline score is an optimistic bound on achievable cycles,
        # so the correction must never predict below it: far outside the
        # training distribution (e.g. coarse fusions the sweep never
        # measured because they don't compile) an unclamped linear
        # extrapolation can reach ~0 and trap a guided search on
        # infeasible points.
        log_cycles = min(max(log_cycles, features[0]), 60.0)
        return math.expm1(log_cycles)

    # ------------------------------------------------------------------
    # Fitting
    # ------------------------------------------------------------------
    def fit(self, records: Iterable[CalibrationRecord]) -> "CalibratedCostModel":
        """Fit per-model correction terms from ground-truth records.

        Returns ``self`` so ``CalibratedCostModel().fit(...).save(...)``
        chains.  Raises :class:`CostModelError` when no usable record
        survives (an empty fit would silently behave like the raw
        heuristic while claiming to be calibrated).
        """
        rows: Dict[str, List[Tuple[List[float], float]]] = {}
        for record in records:
            if record.cycles is None or record.cycles < 0:
                continue
            features = self.base.features(
                record.program, record.schedule, record.stats, record.machine
            )
            target = _log1p(record.cycles)
            rows.setdefault(record.model_name, []).append((features, target))
            rows.setdefault(GLOBAL_KEY, []).append((features, target))
        if not rows:
            raise CostModelError("no usable calibration records")
        self.terms = {}
        for name in sorted(rows):
            design = np.array([f for f, _ in rows[name]], dtype=float)
            target = np.array([t for _, t in rows[name]], dtype=float)
            weights, *_ = np.linalg.lstsq(design, target, rcond=None)
            fitted = design @ weights
            raw = design[:, 0]  # raw heuristic = log_score as-is
            self.terms[name] = FittedTerms(
                weights=[float(w) for w in weights],
                records=len(target),
                rmse=float(np.sqrt(np.mean((fitted - target) ** 2))),
                raw_rmse=float(np.sqrt(np.mean((raw - target) ** 2))),
            )
        return self

    def fit_from_store(self, path: str) -> "CalibratedCostModel":
        """Fit from a sweep artifact on disk.

        Accepts either a sweep ``ResultStore`` JSONL results file or a
        ``SweepSpec`` JSON file; a spec is *executed in-process* first
        (SweepSpec-driven calibration), so ``fuseflow tune --calibrate
        spec.json`` measures its own ground truth.
        """
        return self.fit(calibration_records(path))

    # ------------------------------------------------------------------
    # Persistence (versioned, bit-stable JSON)
    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, object]:
        return {
            "version": COSTMODEL_VERSION,
            "kind": "calibrated-cost-model",
            "features": list(FEATURE_NAMES),
            "terms": {
                name: terms.to_record() for name, terms in self.terms.items()
            },
        }

    def save(self, path: str) -> None:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_record(), fh, sort_keys=True, indent=2)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "CalibratedCostModel":
        with open(path, "r", encoding="utf-8") as fh:
            record = json.load(fh)
        if record.get("kind") != "calibrated-cost-model":
            raise CostModelError(f"{path!r} is not a cost-model artifact")
        version = record.get("version")
        if version != COSTMODEL_VERSION:
            raise CostModelError(
                f"{path!r}: cost-model version {version} is not supported "
                f"(this build reads version {COSTMODEL_VERSION})"
            )
        if list(record.get("features", [])) != list(FEATURE_NAMES):
            raise CostModelError(
                f"{path!r}: feature layout {record.get('features')} does "
                f"not match this build's {list(FEATURE_NAMES)}"
            )
        terms = {
            name: FittedTerms.from_record(rec)
            for name, rec in record.get("terms", {}).items()
        }
        return cls(terms=terms)


# ----------------------------------------------------------------------
# Record extraction from sweep artifacts
# ----------------------------------------------------------------------
def _records_from_results(
    results: Sequence[Mapping[str, object]],
) -> List[CalibrationRecord]:
    """Turn sweep result records (with full ``point`` dicts) into
    calibration records, skipping failed or point-less entries."""
    # Sweep imports stay function-local: core.heuristic must not import
    # repro.sweep at module load (sweep imports the driver which imports
    # core — a cycle).
    from ...comal.machines import MACHINES
    from ...sweep.spec import SweepPoint, build_bundle
    from .model import stats_from_binding

    bundles: Dict[Tuple, object] = {}
    stats_cache: Dict[Tuple, Mapping[str, TensorStats]] = {}
    out: List[CalibrationRecord] = []
    for record in results:
        if record.get("status") != "ok":
            continue
        point_rec = record.get("point")
        metrics = record.get("metrics") or {}
        cycles = metrics.get("cycles")
        if not point_rec or cycles is None:
            continue
        point = SweepPoint.from_record(point_rec)
        # model_args is already a sorted tuple of (key, value) pairs.
        bundle_key = (point.model, point.dataset, point.model_args)
        if bundle_key not in bundles:
            bundles[bundle_key] = build_bundle(point)
            stats_cache[bundle_key] = stats_from_binding(
                bundles[bundle_key].binding
            )
        bundle = bundles[bundle_key]
        try:
            schedule = bundle.schedule(point.schedule)
        except Exception:
            continue
        if point.par:
            schedule.par = dict(point.par)
        if point.splits:
            schedule.splits = dict(point.splits)
        machine = MACHINES[point.machine]
        if point.hierarchy != "flat":
            machine = machine.with_hierarchy(point.hierarchy)
        out.append(
            CalibrationRecord(
                model_name=point.model,
                program=bundle.program,
                schedule=schedule,
                stats=stats_cache[bundle_key],
                machine=machine,
                cycles=float(cycles),
            )
        )
    return out


def calibration_records(path: str) -> List[CalibrationRecord]:
    """Ground-truth records from a sweep artifact.

    Three formats are recognized:

    * ResultStore JSONL (``fuseflow sweep run`` output) — read directly;
    * SweepSpec JSON — the sweep is executed in-process and its results
      used (SweepSpec-driven calibration);
    * BENCH payload JSON whose ``results`` entries embed ``point``
      records (``fuseflow sweep report --bench-out``).
    """
    from ...sweep.runner import run_sweep
    from ...sweep.spec import SweepSpec
    from ...sweep.store import ResultStore

    with open(path, "r", encoding="utf-8") as fh:
        head = fh.read(1)
    if not head:
        raise CostModelError(f"{path!r} is empty")
    if path.endswith(".jsonl"):
        return _records_from_results(ResultStore.open(path).records())
    with open(path, "r", encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except json.JSONDecodeError:
            # Multi-line JSONL without the extension.
            return _records_from_results(ResultStore.open(path).records())
    if (
        isinstance(payload, dict)
        and "models" in payload
        and "schedules" in payload
    ):
        spec = SweepSpec.from_record(payload)
        outcome = run_sweep(spec, store_path=None, workers=1)
        return _records_from_results(outcome.records)
    if isinstance(payload, dict) and "results" in payload:
        results = []
        for r in payload["results"]:
            extra = r.get("extra") or {}
            # Summary-JSON entries carry point/metrics at top level;
            # BENCH entries nest the point under extra and flatten
            # cycles into value.
            metrics = r.get("metrics") or dict(extra, cycles=r.get("value"))
            results.append(
                {
                    "status": r.get("status", "ok"),
                    "point": r.get("point") or extra.get("point"),
                    "metrics": metrics,
                }
            )
        return _records_from_results(results)
    raise CostModelError(
        f"{path!r}: not a ResultStore JSONL, SweepSpec JSON, or BENCH "
        "payload with embedded points"
    )
