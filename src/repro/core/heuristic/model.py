"""Analytical fusion heuristic (paper Section 7, evaluated in Table 3).

Estimates FLOPs and DRAM traffic of a scheduled program *without* running
the dataflow simulation.  Users supply tensor dimensions and sparsity
percentages (densities); intersection rates default to the independence
assumption (the probability that two sparse operands coincide at a
coordinate is the product of their densities).

The estimator mirrors the compiler's own region structure: it fuses each
region, derives the dataflow order, classifies producer->consumer edges as
streaming or recompute with the same prefix criterion the lowering uses, and
then walks statements with closed-form expected-count formulas.  Because it
never materializes iteration spaces it runs in microseconds, enabling the
early pruning of suboptimal schedules (Section 8.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..einsum.ast import EinsumProgram, MULTIPLICATIVE_OPS, Statement
from ..fusion.fuse import FusedEinsum, fold_masks, fuse_region, merge_contractions
from ..schedule.schedule import Schedule, unfused


@dataclass
class TensorStats:
    """Shape, density, and block shape of one tensor."""

    shape: Tuple[int, ...]
    density: float
    block: Tuple[int, ...] = ()

    @property
    def nnz(self) -> float:
        size = float(np.prod(self.shape)) if self.shape else 1.0
        return self.density * size


def stats_from_binding(binding: Dict[str, object]) -> Dict[str, TensorStats]:
    """Measure shapes/densities from bound SparseTensor inputs."""
    out: Dict[str, TensorStats] = {}
    for name, tensor in binding.items():
        shape = tuple(tensor.shape)
        block = tensor.fmt.block_shape
        if block:
            shape = tuple(s // b for s, b in zip(shape, block))
        out[name] = TensorStats(shape=shape, density=tensor.density(), block=block)
    return out


@dataclass
class HeuristicEstimate:
    """Estimated cost of one schedule."""

    flops: float = 0.0
    dram_bytes: float = 0.0
    per_region: List[Tuple[str, float, float]] = field(default_factory=list)

    def operational_intensity(self) -> float:
        return self.flops / self.dram_bytes if self.dram_bytes else float("inf")


class FusionHeuristic:
    """FLOPs/bytes estimator over schedules of one program."""

    VALUE_BYTES = 8
    CRD_BYTES = 4
    # On-chip residency threshold, matching the simulator's scratchpad.
    # Default mirrors Machine.scratchpad_bytes; pass the target machine's
    # value (rank_schedules does) so hierarchy-pinned operand budgets
    # shift the estimates the same way they shift simulated traffic.
    scratchpad_bytes = 1 << 16

    def __init__(
        self,
        program: EinsumProgram,
        stats: Dict[str, TensorStats],
        scratchpad_bytes: int | None = None,
    ) -> None:
        self.program = program
        self.stats = dict(stats)
        self.sizes = program.index_sizes()
        if scratchpad_bytes is not None:
            self.scratchpad_bytes = scratchpad_bytes

    # ------------------------------------------------------------------
    def estimate(self, schedule: Schedule | None = None) -> HeuristicEstimate:
        schedule = schedule or unfused(self.program)
        schedule.validate(self.program)
        estimate = HeuristicEstimate()
        known_stats = dict(self.stats)
        for pos, sids in enumerate(schedule.regions):
            fused = fuse_region(self.program, sids, name=f"h-r{pos}")
            if schedule.fold_masks and len(sids) > 1:
                fused = fold_masks(fused)
            if schedule.global_rewrite and len(sids) > 1:
                fused = merge_contractions(fused)
            order = schedule.orders.get(pos) or fused.first_order()
            flops, nbytes = self._estimate_region(fused, order, known_stats)
            estimate.flops += flops
            estimate.dram_bytes += nbytes
            estimate.per_region.append((fused.name, flops, nbytes))
        return estimate

    # ------------------------------------------------------------------
    def _estimate_region(
        self,
        fused: FusedEinsum,
        order: Sequence[str],
        known_stats: Dict[str, TensorStats],
    ) -> Tuple[float, float]:
        sizes = dict(self.sizes)
        sizes.update(fused.index_sizes)
        producer_of = {s.lhs.tensor: s for s in fused.statements}
        # Extents for indices that only touch materialized intermediates.
        for stmt in fused.statements:
            for acc in list(stmt.operands) + [stmt.lhs]:
                recorded = known_stats.get(acc.tensor)
                if recorded is not None and len(recorded.shape) == len(acc.indices):
                    for idx, extent in zip(acc.indices, recorded.shape):
                        sizes.setdefault(idx, extent)
        rank = {idx: i for i, idx in enumerate(order)}

        def emission(stmt: Statement) -> Tuple[str, ...]:
            out = set(stmt.lhs.indices)
            return tuple(i for i in order if i in out)

        def iteration(stmt: Statement) -> Tuple[str, ...]:
            idxs = set(stmt.all_indices())
            return tuple(i for i in order if i in idxs)

        # Execution multiplicity: recompute consumers re-run producers.
        mult: Dict[str, float] = {s.lhs.tensor: 1.0 for s in fused.statements}
        for stmt in reversed(fused.statements):
            for acc in stmt.operands:
                producer = producer_of.get(acc.tensor)
                if producer is None:
                    continue
                prod_emit = emission(producer)
                cons_iter = iteration(stmt)
                streaming = cons_iter[: len(prod_emit)] == prod_emit
                if streaming:
                    factor = 1.0
                else:
                    # Each reference to the producer's outer index re-runs one
                    # fiber; references = expected co-iteration points at the
                    # driver level; distinct fibers = the index extent.
                    driver = prod_emit[0] if prod_emit else None
                    refs = self._expected_points(
                        stmt, cons_iter[: cons_iter.index(driver) + 1]
                        if driver in cons_iter
                        else cons_iter,
                        known_stats,
                        producer_of,
                        sizes,
                    )
                    extent = float(sizes.get(driver, 1)) or 1.0
                    factor = max(refs / extent, 1.0)
                mult[acc.tensor] = max(
                    mult.get(acc.tensor, 1.0),
                    mult[stmt.lhs.tensor] * factor,
                )

        flops = 0.0
        nbytes = 0.0
        for stmt in fused.statements:
            m = mult[stmt.lhs.tensor]
            stmt_flops, stmt_bytes = self._estimate_statement(
                stmt, known_stats, producer_of, sizes, order, m
            )
            flops += stmt_flops
            nbytes += stmt_bytes
            # Record output stats for downstream estimation.
            known_stats[stmt.lhs.tensor] = TensorStats(
                shape=tuple(sizes.get(i, 1) for i in stmt.lhs.indices),
                density=self._output_density(stmt, known_stats, producer_of, sizes),
                block=tuple(
                    self._block_shape_of(stmt.lhs, producer_of, known_stats=known_stats)
                    or ()
                ),
            )
            if stmt.lhs.tensor in fused.outputs:
                out_stats = known_stats[stmt.lhs.tensor]
                out_block = float(
                    np.prod(
                        self._block_shape_of(stmt.lhs, producer_of, known_stats=known_stats)
                        or (1,)
                    )
                )
                nbytes += out_stats.nnz * (
                    self.VALUE_BYTES * out_block + self.CRD_BYTES
                )
        return flops, nbytes

    # ------------------------------------------------------------------
    def _density_of(
        self,
        tensor: str,
        known_stats: Dict[str, TensorStats],
        producer_of: Dict[str, Statement],
        sizes: Dict[str, int],
        _depth: int = 0,
    ) -> float:
        if tensor in known_stats:
            return known_stats[tensor].density
        producer = producer_of.get(tensor)
        if producer is None or _depth > 16:
            return 1.0
        return self._output_density(producer, known_stats, producer_of, sizes, _depth + 1)

    def _output_density(
        self,
        stmt: Statement,
        known_stats: Dict[str, TensorStats],
        producer_of: Dict[str, Statement],
        sizes: Dict[str, int],
        _depth: int = 0,
    ) -> float:
        dens = [
            self._density_of(a.tensor, known_stats, producer_of, sizes, _depth + 1)
            for a in stmt.operands
        ]
        if stmt.kind in ("unary", "fiber"):
            return dens[0]
        if stmt.op in MULTIPLICATIVE_OPS:
            point = float(np.prod(dens))
            red = stmt.reduction_indices()
            red_size = float(np.prod([sizes.get(i, 1) for i in red])) if red else 1.0
            # Probability an output point sees at least one surviving term.
            return float(1.0 - (1.0 - point) ** red_size)
        # Additive: union of supports.
        keep = 1.0
        for d in dens:
            keep *= 1.0 - d
        return 1.0 - keep

    def _block_shape_of(self, acc, producer_of, _depth: int = 0, known_stats=None):
        """Block shape of an operand, traced through producer chains."""
        if _depth > 16:
            return ()
        decl = self.program.decls.get(acc.tensor)
        if decl is not None:
            return decl.fmt.block_shape
        if known_stats is not None and acc.tensor in known_stats:
            return known_stats[acc.tensor].block
        producer = producer_of.get(acc.tensor)
        if producer is None:
            return ()
        if producer.op == "bmt":
            a = self._block_shape_of(producer.operands[0], producer_of, _depth + 1, known_stats)
            b = self._block_shape_of(producer.operands[1], producer_of, _depth + 1, known_stats)
            return (a[0], b[0]) if a and b else ()
        if producer.op == "bmm":
            a = self._block_shape_of(producer.operands[0], producer_of, _depth + 1, known_stats)
            b = self._block_shape_of(producer.operands[1], producer_of, _depth + 1, known_stats)
            return (a[0], b[-1]) if a and b else ()
        return self._block_shape_of(producer.operands[0], producer_of, _depth + 1, known_stats)

    def _expected_points(
        self,
        stmt: Statement,
        prefix: Sequence[str],
        known_stats: Dict[str, TensorStats],
        producer_of: Dict[str, Statement],
        sizes: Dict[str, int],
    ) -> float:
        """Expected co-iteration points over the given index prefix."""
        space = float(np.prod([sizes.get(i, 1) for i in prefix])) if prefix else 1.0
        density = 1.0
        prefix_set = set(prefix)
        for acc in stmt.operands:
            if prefix_set & set(acc.indices):
                density *= self._density_of(
                    acc.tensor, known_stats, producer_of, sizes
                )
        return space * density

    def _estimate_statement(
        self,
        stmt: Statement,
        known_stats: Dict[str, TensorStats],
        producer_of: Dict[str, Statement],
        sizes: Dict[str, int],
        order: Sequence[str],
        mult: float = 1.0,
    ) -> Tuple[float, float]:
        """(flops, dram bytes) for ``mult`` executions of one statement."""
        iteration = [i for i in order if i in set(stmt.all_indices())]
        block = 1.0
        for acc in stmt.operands:
            decl = self.program.decls.get(acc.tensor)
            if decl is not None and decl.fmt.is_blocked:
                block = float(np.prod(decl.fmt.block_shape))
                break
        if stmt.kind in ("unary", "fiber"):
            src = stmt.operands[0]
            nnz = self._density_of(src.tensor, known_stats, producer_of, sizes)
            space = float(np.prod([sizes.get(i, 1) for i in src.indices]))
            count = nnz * space * block
            per_elem = 5.0 if stmt.kind == "fiber" else 1.0
            mem = 0.0
            if src.tensor not in producer_of and src.tensor in self.program.decls:
                footprint = count * self.VALUE_BYTES
                access = mult * footprint
                mem = min(access, footprint) if footprint <= self.scratchpad_bytes else access
            return mult * per_elem * count, mem
        # Contraction: innermost co-iteration points.
        points = self._expected_points(
            stmt, iteration, known_stats, producer_of, sizes
        )
        n_ops = len(stmt.operands)
        if stmt.op in ("bmm", "bmt"):
            # One block matmul per point plus elementwise extras and the add.
            shape_a = self._block_shape_of(stmt.operands[0], producer_of, known_stats=known_stats)
            shape_b = self._block_shape_of(stmt.operands[1], producer_of, known_stats=known_stats)
            if shape_a and shape_b:
                rows = shape_a[0]
                inner = shape_a[1]
                cols = shape_b[0] if stmt.op == "bmt" else shape_b[-1]
                matmul_flops = 2.0 * rows * cols * inner
            else:
                matmul_flops = 2.0 * block * np.sqrt(block)
            ops_per_point = matmul_flops + (n_ops - 1) * block
        elif stmt.op in MULTIPLICATIVE_OPS:
            # (n-1) multiplies plus one reduction add per point.
            ops_per_point = float(n_ops) * block
        else:
            ops_per_point = 1.0 * block
        flops = mult * points * ops_per_point
        # Memory: each *memory* operand's values are fetched per point it
        # participates in, capped at its footprint when it fits on chip
        # (mirroring the simulator's scratchpad residency); structure reads
        # for compressed levels are charged once.
        mem = 0.0
        for acc in stmt.operands:
            if acc.tensor in producer_of:
                continue  # streamed on-chip
            decl = self.program.decls.get(acc.tensor)
            acc_block = float(
                np.prod(self._block_shape_of(acc, producer_of, known_stats=known_stats) or (1,))
            )
            density = self._density_of(acc.tensor, known_stats, producer_of, sizes)
            space = float(np.prod([sizes.get(i, 1) for i in acc.indices]))
            footprint = density * space * self.VALUE_BYTES * acc_block
            access = mult * points * self.VALUE_BYTES * acc_block
            if footprint <= self.scratchpad_bytes:
                mem += min(access, footprint)
            else:
                mem += access
            mem += min(mult, 1.0) * density * space * self.CRD_BYTES
        return flops, mem


def estimate_schedule(
    program: EinsumProgram,
    schedule: Schedule,
    stats: Dict[str, TensorStats],
) -> HeuristicEstimate:
    """Convenience wrapper: estimate one schedule's cost."""
    return FusionHeuristic(program, stats).estimate(schedule)
