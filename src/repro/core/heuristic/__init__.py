"""Analytical fusion heuristic and schedule pruning."""

from .model import FusionHeuristic, HeuristicEstimate, TensorStats, estimate_schedule, stats_from_binding
from .prune import RankedSchedule, prune_schedules, rank_schedules, roofline_score

__all__ = [
    "FusionHeuristic",
    "HeuristicEstimate",
    "TensorStats",
    "estimate_schedule",
    "stats_from_binding",
    "rank_schedules",
    "prune_schedules",
    "RankedSchedule",
    "roofline_score",
]
