"""Analytical fusion heuristic, schedule pruning, and calibrated cost models."""

from .costmodel import (
    COSTMODEL_VERSION,
    CalibratedCostModel,
    CalibrationRecord,
    CostModel,
    CostModelError,
    HeuristicCostModel,
    calibration_records,
)
from .model import FusionHeuristic, HeuristicEstimate, TensorStats, estimate_schedule, stats_from_binding
from .prune import RankedSchedule, prune_schedules, rank_schedules, roofline_score

__all__ = [
    "FusionHeuristic",
    "HeuristicEstimate",
    "TensorStats",
    "estimate_schedule",
    "stats_from_binding",
    "rank_schedules",
    "prune_schedules",
    "RankedSchedule",
    "roofline_score",
    "CostModel",
    "CostModelError",
    "HeuristicCostModel",
    "CalibratedCostModel",
    "CalibrationRecord",
    "calibration_records",
    "COSTMODEL_VERSION",
]
