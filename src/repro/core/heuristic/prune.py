"""Schedule pruning via the fusion heuristic (paper Sections 7 / 8.3).

Given a set of candidate schedules, rank them by estimated cost and keep the
most promising ones for full simulation.  Cost combines estimated FLOPs and
DRAM traffic through a simple roofline: ``cycles ~ max(flops / peak,
bytes / bandwidth)``, which is what decides winners on a bandwidth-bound
dataflow machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ...comal.machines import Machine, RDA_MACHINE
from ..einsum.ast import EinsumProgram
from ..schedule.schedule import Schedule
from .model import FusionHeuristic, HeuristicEstimate, TensorStats


@dataclass
class RankedSchedule:
    """One candidate with its heuristic estimate and roofline score."""

    schedule: Schedule
    estimate: HeuristicEstimate
    score: float


def roofline_score(estimate: HeuristicEstimate, machine: Machine) -> float:
    """Estimated cycles under a compute/bandwidth roofline."""
    compute = estimate.flops / machine.peak_flops_per_cycle
    memory = estimate.dram_bytes / machine.dram_bandwidth
    return max(compute, memory)


def rank_schedules(
    program: EinsumProgram,
    schedules: Sequence[Schedule],
    stats: Dict[str, TensorStats],
    machine: Machine = RDA_MACHINE,
) -> List[RankedSchedule]:
    """Rank candidate schedules from best (lowest score) to worst."""
    heuristic = FusionHeuristic(
        program, stats, scratchpad_bytes=machine.scratchpad_bytes
    )
    ranked = [
        RankedSchedule(schedule=s, estimate=heuristic.estimate(s),
                       score=0.0)
        for s in schedules
    ]
    for r in ranked:
        r.score = roofline_score(r.estimate, machine)
    ranked.sort(key=lambda r: r.score)
    return ranked


def prune_schedules(
    program: EinsumProgram,
    schedules: Sequence[Schedule],
    stats: Dict[str, TensorStats],
    keep: int = 3,
    machine: Machine = RDA_MACHINE,
) -> List[Schedule]:
    """Keep the ``keep`` most promising schedules for full simulation."""
    ranked = rank_schedules(program, schedules, stats, machine)
    return [r.schedule for r in ranked[: max(keep, 1)]]
