"""SAMML dataflow graph IR.

A :class:`SAMGraph` is a directed graph of primitive nodes connected by named
streams.  Nodes are instances of primitives from
:mod:`repro.sam.primitives`; edges connect an output port of one node to an
input port of another.  Graphs are data-independent: scanners and value
arrays name the tensors they read, and an execution binds names to actual
:class:`~repro.ftree.tensor.SparseTensor` objects.

The graph deliberately mirrors the three regions of a SAM graph (input
iteration, computation, tensor construction); each node carries a ``region``
tag plus optional metadata such as the index variable it iterates and a
parallelization factor used by the timed simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Tuple

from .primitives.base import Primitive


@dataclass
class Port:
    """Reference to one output port of one node."""

    node_id: str
    port: str

    def key(self) -> Tuple[str, str]:
        return (self.node_id, self.port)


@dataclass
class Node:
    """One dataflow primitive instance within a graph."""

    node_id: str
    prim: Primitive
    inputs: Dict[str, Port] = field(default_factory=dict)
    region: str = "compute"
    index_var: Optional[str] = None
    par_factor: int = 1
    # Tile-sequential execution factor (index splitting): the node's token
    # stream is processed in this many back-to-back tile passes, each tile
    # boundary costing one pipeline fill/drain in the timed engine.  1 means
    # flat (un-tiled) execution — bit-identical to the pre-splitting model.
    tile_factor: int = 1
    meta: Dict[str, Any] = field(default_factory=dict)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Node({self.node_id}: {self.prim.describe()})"


class GraphError(ValueError):
    """Raised on malformed graph construction or validation failure."""


class SAMGraph:
    """A SAMML dataflow graph: primitives wired by named streams."""

    def __init__(self, name: str = "kernel") -> None:
        self.name = name
        self.nodes: Dict[str, Node] = {}
        # Named graph outputs: label -> producing port.
        self.outputs: Dict[str, Port] = {}
        self._counter = 0
        # Structure caches, invalidated by add()/set_output(): simulation
        # re-runs the same graph many times, so the topological sort and the
        # validation result are computed once per structural change.
        self._topo_cache: Optional[List[str]] = None
        self._validated = False
        self._tensor_names_cache: Optional[List[str]] = None
        self._input_tensor_names_cache: Optional[List[str]] = None
        # Executor-owned memoization slots (see repro.comal.functional /
        # repro.comal.engine); cleared on structural change.
        self.func_cache: Optional[Any] = None
        self.timed_cache: Optional[Any] = None

    def __getstate__(self):
        # The executor memo slots hold simulation results keyed by tensor
        # identity — meaningless (and potentially huge) in another process.
        # Dropping them keeps serialized graphs (persistent compile cache)
        # pure structure; the structure caches (_topo_cache etc.) are plain
        # data and travel as-is.
        state = dict(self.__dict__)
        state["func_cache"] = None
        state["timed_cache"] = None
        return state

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(
        self,
        prim: Primitive,
        inputs: Dict[str, Port] | None = None,
        *,
        node_id: str | None = None,
        region: str = "compute",
        index_var: str | None = None,
    ) -> Node:
        """Add a node and return it.  Input ports are validated eagerly."""
        if node_id is None:
            self._counter += 1
            node_id = f"n{self._counter}_{prim.kind}"
        if node_id in self.nodes:
            raise GraphError(f"duplicate node id {node_id!r}")
        inputs = dict(inputs or {})
        for port_name in inputs:
            if port_name not in prim.in_ports:
                raise GraphError(
                    f"{prim.kind} has no input port {port_name!r} "
                    f"(expected one of {prim.in_ports})"
                )
        node = Node(node_id=node_id, prim=prim, inputs=inputs, region=region, index_var=index_var)
        self.nodes[node_id] = node
        self._topo_cache = None
        self._validated = False
        self._tensor_names_cache = None
        self._input_tensor_names_cache = None
        self.func_cache = None
        self.timed_cache = None
        return node

    def port(self, node: Node | str, port: str = "out") -> Port:
        """Build a :class:`Port` handle for ``node``'s output ``port``."""
        node_id = node if isinstance(node, str) else node.node_id
        prim = self.nodes[node_id].prim
        if port not in prim.out_ports:
            raise GraphError(
                f"{prim.kind} has no output port {port!r} (expected {prim.out_ports})"
            )
        return Port(node_id, port)

    def set_output(self, label: str, port: Port) -> None:
        """Mark a port as a named graph output."""
        self.outputs[label] = port
        self._validated = False

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def predecessors(self, node_id: str) -> Iterator[str]:
        for port in self.nodes[node_id].inputs.values():
            yield port.node_id

    def successors(self, node_id: str) -> Iterator[str]:
        for other in self.nodes.values():
            for port in other.inputs.values():
                if port.node_id == node_id:
                    yield other.node_id
                    break

    def topological_order(self) -> List[str]:
        """Kahn topological sort; raises on cycles (SAM graphs are DAGs).

        The result is cached until the next structural change — executors
        sort the same graph on every run.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indegree = {nid: 0 for nid in self.nodes}
        for node in self.nodes.values():
            seen_preds = set()
            for port in node.inputs.values():
                if port.node_id not in self.nodes:
                    raise GraphError(
                        f"node {node.node_id} reads from unknown node {port.node_id}"
                    )
                if port.node_id not in seen_preds:
                    seen_preds.add(port.node_id)
                    indegree[node.node_id] += 1
        ready = sorted(nid for nid, deg in indegree.items() if deg == 0)
        order: List[str] = []
        adjacency: Dict[str, List[str]] = {nid: [] for nid in self.nodes}
        for node in self.nodes.values():
            for pred in set(p.node_id for p in node.inputs.values()):
                adjacency[pred].append(node.node_id)
        while ready:
            nid = ready.pop()
            order.append(nid)
            for succ in sorted(set(adjacency[nid])):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.nodes):
            raise GraphError("graph contains a cycle")
        self._topo_cache = order
        return order

    def tensor_names(self) -> List[str]:
        """All tensor names referenced by scanners/arrays in this graph."""
        if self._tensor_names_cache is not None:
            return self._tensor_names_cache
        names = []
        for node in self.nodes.values():
            name = getattr(node.prim, "tensor_name", None)
            if name is not None and name not in names:
                names.append(name)
        self._tensor_names_cache = names
        return names

    def input_tensor_names(self) -> List[str]:
        """Tensor names this graph *reads* (scanners/locators/arrays).

        Writer outputs are excluded: they are produced by execution, not
        bound into it — this is the name set a result memo must key on.
        """
        if self._input_tensor_names_cache is not None:
            return self._input_tensor_names_cache
        names = []
        for node in self.nodes.values():
            name = getattr(node.prim, "tensor_name", None)
            if name is not None and node.prim.kind != "write" and name not in names:
                names.append(name)
        self._input_tensor_names_cache = names
        return names

    def node_count(self) -> int:
        return len(self.nodes)

    def validate(self) -> None:
        """Check structural invariants: ports wired, DAG, outputs exist."""
        for node in self.nodes.values():
            for required in node.prim.in_ports:
                if required not in node.inputs:
                    raise GraphError(
                        f"node {node.node_id} missing required input {required!r}"
                    )
        self.topological_order()
        for label, port in self.outputs.items():
            if port.node_id not in self.nodes:
                raise GraphError(f"output {label!r} references unknown node")
        self._validated = True

    def ensure_validated(self) -> None:
        """Validate once; repeated calls on an unchanged graph are free.

        The compile pipeline validates every lowered graph at compile time,
        so executions of cached executables skip validation entirely; graphs
        built by hand (tests, notebooks) still get checked on first run.
        """
        if not self._validated:
            self.validate()

    def describe(self) -> str:
        """Multi-line human-readable dump, stable for golden tests."""
        lines = [f"graph {self.name} ({len(self.nodes)} nodes)"]
        for nid in self.topological_order():
            node = self.nodes[nid]
            ins = ", ".join(
                f"{p}<-{src.node_id}.{src.port}" for p, src in sorted(node.inputs.items())
            )
            tag = f" [{node.region}]"
            par = f" x{node.par_factor}" if node.par_factor > 1 else ""
            tiles = f" t{node.tile_factor}" if node.tile_factor > 1 else ""
            lines.append(f"  {nid}: {node.prim.describe()}{tag}{par}{tiles} ({ins})")
        for label, port in sorted(self.outputs.items()):
            lines.append(f"  output {label} = {port.node_id}.{port.port}")
        return "\n".join(lines)
