"""Tensor construction: level writers assembling output fibertrees.

The :class:`TensorWriter` consumes one coordinate stream per output level
plus the final value stream, reconstructs the coordinate paths, drops
explicit zeros (coordinate-dropper semantics), and assembles a
:class:`~repro.ftree.tensor.SparseTensor` in the requested output format.
Writes are charged to DRAM.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ...ftree.format import Format
from ...ftree.tensor import SparseTensor
from ..token import (
    CRD,
    DONE,
    STOP,
    Stream,
    StreamProtocolError,
    TokenStream,
    check_stream,
    stream_to_nest,
)
from .base import ExecutionContext, NodeStats, Primitive


class TensorWriter(Primitive):
    """Assemble an output tensor from level crd streams and a val stream.

    Ports: ``crd0`` .. ``crd{n-1}`` (outer to inner) and ``val``.  The
    streams must share the nesting produced by the graph's fused iteration:
    the crd stream for level ``d`` has nesting depth ``d + 1`` and aligns
    positionally with the levels above it.
    """

    kind = "write"
    out_ports = ("tensor",)

    def __init__(
        self,
        tensor_name: str,
        shape: Tuple[int, ...],
        fmt: Format,
        dram: bool = True,
        drop_zeros: bool = True,
    ) -> None:
        self.tensor_name = tensor_name
        self.shape = tuple(shape)
        self.fmt = fmt
        self.dram = dram
        self.drop_zeros = drop_zeros
        self.in_ports = tuple(f"crd{d}" for d in range(len(shape))) + ("val",)

    def describe(self) -> str:
        return f"write({self.tensor_name})"

    def touches_dram(self) -> bool:
        return self.dram

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        n = len(self.shape)
        stats.tokens_in += sum(len(s) for s in ins.values())
        check = ctx.debug_streams
        nests = [
            stream_to_nest(ins[f"crd{d}"], d + 1, check=check) for d in range(n)
        ]
        val_nest = stream_to_nest(ins["val"], n, check=check)
        coords: Dict[Tuple[int, ...], Any] = {}

        def rec(depth: int, frames: List[Any], vals: Any, prefix: Tuple[int, ...]) -> None:
            coords_here = frames[0]
            if len(coords_here) != len(vals):
                raise StreamProtocolError(
                    f"writer {self.tensor_name}: level {depth} crd/val fan-out "
                    f"mismatch ({len(coords_here)} vs {len(vals)})"
                )
            for i, c in enumerate(coords_here):
                path = prefix + (c,)
                if depth == n - 1:
                    coords[path] = vals[i]
                else:
                    rec(depth + 1, [f[i] for f in frames[1:]], vals[i], path)

        rec(0, nests, val_nest, ())
        if self.drop_zeros:
            coords = {
                p: v
                for p, v in coords.items()
                if (np.abs(v).max() if isinstance(v, np.ndarray) else abs(v)) != 0.0
            }
        return self._build(coords, ctx, stats)

    def _build(
        self, coords: Dict[Tuple[int, ...], Any], ctx: ExecutionContext, stats: NodeStats
    ) -> Dict[str, Stream]:
        tensor = SparseTensor.from_coords(
            self.shape, self.fmt, coords, name=self.tensor_name
        )
        if self.dram:
            stats.dram_writes += tensor.bytes_total()
        ctx.results[self.tensor_name] = tensor
        # Emit a sentinel stream so the writer participates in timing.
        out: Stream = []
        stats.tokens_out += len(out)
        return {"tensor": out}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        """Columnar assembly: coordinate paths by counting fiber closures.

        The coordinate path of the ``k``-th value is recovered without
        nesting: at level ``d`` the active coordinate is the ``g``-th
        payload of ``crd_d``, where ``g`` counts the stops of level
        ``>= n-2-d`` seen before the value (each such stop closes one
        depth-``d+1`` fiber of the value nest).  The innermost crd stream
        aligns 1:1 with the values.
        """
        n = len(self.shape)
        stats.tokens_in += sum(len(s) for s in ins.values())
        if ctx.debug_streams:
            for stream in ins.values():
                check_stream(stream)
        val = ins["val"]
        kinds = val.kinds
        val_pos = np.nonzero((kinds != STOP) & (kinds != DONE))[0]
        m = len(val_pos)

        cols: List[np.ndarray] = []
        for d in range(n):
            crd = ins[f"crd{d}"]
            ck = crd.kinds
            pay = np.nonzero((ck != STOP) & (ck != DONE))[0]
            if (ck[pay] != CRD).any():
                raise StreamProtocolError(
                    f"writer {self.tensor_name}: crd{d} carries non-coordinate "
                    "payload tokens"
                )
            payloads = crd.data[pay].astype(np.int64)
            if d == n - 1:
                if len(payloads) != m:
                    raise StreamProtocolError(
                        f"writer {self.tensor_name}: level {d} crd/val fan-out "
                        f"mismatch ({len(payloads)} vs {m})"
                    )
                cols.append(payloads)
            else:
                closes = (kinds == STOP) & (val.data >= n - 2 - d)
                group = np.cumsum(closes)[val_pos]
                if m and (
                    len(payloads) <= int(group.max())
                ):
                    raise StreamProtocolError(
                        f"writer {self.tensor_name}: level {d} crd/val fan-out "
                        f"mismatch ({len(payloads)} vs {int(group.max()) + 1})"
                    )
                cols.append(payloads[group] if m else payloads[:0])

        if val.objs is None:
            vals = val.data[val_pos]
            if self.drop_zeros:
                keep = vals != 0.0
                vals = vals[keep]
                cols = [c[keep] for c in cols]
            values: List[Any] = vals.tolist()
        else:
            values = [
                val.objs[i] if val.objs[i] is not None else val.data[i].item()
                for i in val_pos.tolist()
            ]
            if self.drop_zeros:
                keep_l = [
                    (np.abs(v).max() if isinstance(v, np.ndarray) else abs(v)) != 0.0
                    for v in values
                ]
                keep = np.asarray(keep_l, dtype=bool)
                values = [v for v, k in zip(values, keep_l) if k]
                cols = [c[keep] for c in cols]

        paths = zip(*(c.tolist() for c in cols)) if n else iter(())
        coords = dict(zip(paths, values))
        self._build(coords, ctx, stats)
        return {"tensor": TokenStream.empty()}
