"""SAM/SAMML dataflow primitives."""

from .base import ExecutionContext, NodeStats, Primitive
from .compute import BinaryALU, UnaryALU, ValArray
from .fiberops import FiberMax, FiberNorm, FiberOp, FiberSoftmax
from .joiner import Intersect, Union
from .reduce import AlignCheck, CrdDrop, Reduce, VectorReducer
from .repeat import Repeat, RepeatSigGen, ScalarRepeat
from .scanner import CrdSource, LevelScanner, Locate, Root
from .writer import TensorWriter

__all__ = [
    "Primitive",
    "ExecutionContext",
    "NodeStats",
    "Root",
    "LevelScanner",
    "Locate",
    "CrdSource",
    "Intersect",
    "Union",
    "Repeat",
    "ScalarRepeat",
    "RepeatSigGen",
    "BinaryALU",
    "UnaryALU",
    "ValArray",
    "Reduce",
    "VectorReducer",
    "CrdDrop",
    "AlignCheck",
    "TensorWriter",
    "FiberOp",
    "FiberSoftmax",
    "FiberNorm",
    "FiberMax",
]
