"""Compute primitives: binary/unary ALUs and value arrays.

ALUs operate elementwise over positionally aligned value streams.  Values may
be scalars or dense numpy blocks (blocked formats); all operators broadcast
through numpy, and the ``bmm`` operator performs block matrix multiplication
for contractions over blocked tensors.  EMPTY tokens behave as zeros.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, List, Optional

import numpy as np

from ..token import (
    CRD,
    DONE,
    EMPTY,
    REF,
    STOP,
    VAL,
    Stream,
    StreamProtocolError,
    TokenStream,
)
from .base import ExecutionContext, NodeStats, Primitive


def _objs_from_list(blocks: List[Any], n: int, positions: np.ndarray) -> np.ndarray:
    """Object column of length ``n`` with ``blocks`` placed at ``positions``.

    The ``[*blocks, None]`` trick forces an object array without numpy
    trying to broadcast uniform-shaped ndarrays into a single block.
    """
    objs = np.full(n, None, dtype=object)
    if len(blocks):
        objs[positions] = np.array([*blocks, None], dtype=object)[:-1]
    return objs


def _uniform_block_shape(values: List[Any]):
    """Common ndarray shape of every element, or None if mixed/scalar."""
    shape = None
    for v in values:
        if not isinstance(v, np.ndarray):
            return None
        if shape is None:
            shape = v.shape
        elif v.shape != shape:
            return None
    return shape


def _as_value(token, zero=0.0):
    """Payload of a val token; EMPTY becomes zero."""
    if token[0] == EMPTY:
        return zero
    return token[1]


def _flops_of(value) -> int:
    """FLOPs charged for one elementwise op on a scalar or block."""
    if isinstance(value, np.ndarray):
        return int(value.size)
    return 1


_BINARY_OPS: Dict[str, Callable] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b if not isinstance(b, float) or b != 0.0 else 0.0,
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
    "bmm": lambda a, b: _block_mm(a, b),
    "bmt": lambda a, b: _block_mmt(a, b),
}


def _block_mm(a, b):
    """Block product: matmul for 2-D blocks, scalar multiply otherwise."""
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray) and a.ndim == 2:
        return a @ b
    return a * b


def _block_mmt(a, b):
    """Transposed block product ``a @ b.T`` (QK^T in block space)."""
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray) and a.ndim == 2:
        return a @ b.T
    return a * b


class BinaryALU(Primitive):
    """Elementwise binary operator over two aligned value streams."""

    kind = "alu"
    in_ports = ("a", "b")
    out_ports = ("out",)

    def __init__(self, op: str) -> None:
        if op not in _BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self._fn = _BINARY_OPS[op]

    def __getstate__(self):
        # ``_fn`` is a module-level lambda looked up by op name; pickling
        # it directly fails (and would be redundant), so it is dropped and
        # restored from the op table (the persistent compile cache
        # serializes whole region graphs).
        state = dict(self.__dict__)
        state.pop("_fn", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._fn = _BINARY_OPS[self.op]

    def describe(self) -> str:
        return f"alu({self.op})"

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        a, b = ins["a"], ins["b"]
        if len(a) != len(b):
            raise StreamProtocolError(
                f"alu({self.op}): misaligned inputs ({len(a)} vs {len(b)})"
            )
        stats.tokens_in += len(a) + len(b)
        out: Stream = []
        fn = self._fn
        for ta, tb in zip(a, b):
            ka, kb = ta[0], tb[0]
            if ka == STOP or ka == DONE:
                if ta != tb:
                    raise StreamProtocolError(
                        f"alu({self.op}): control mismatch {ta} vs {tb}"
                    )
                out.append(ta)
            elif ka == EMPTY and kb == EMPTY:
                out.append(ta)
            else:
                va = _as_value(ta)
                vb = _as_value(tb)
                result = fn(va, vb)
                if self.op in ("bmm", "bmt") and isinstance(result, np.ndarray) and result.ndim == 2:
                    stats.ops += 2 * result.shape[0] * result.shape[1] * (
                        va.shape[1] if isinstance(va, np.ndarray) and va.ndim == 2 else 1
                    )
                else:
                    stats.ops += _flops_of(result)
                out.append((VAL, result))
        stats.tokens_out += len(out)
        return {"out": out}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        a, b = ins["a"], ins["b"]
        if len(a) != len(b):
            raise StreamProtocolError(
                f"alu({self.op}): misaligned inputs ({len(a)} vs {len(b)})"
            )
        n = len(a)
        stats.tokens_in += 2 * n
        ka, kb = a.kinds, b.kinds
        ctrl = (ka == STOP) | (ka == DONE)
        ctrl_b = (kb == STOP) | (kb == DONE)
        mismatch = (ctrl != ctrl_b) | (ctrl & ((ka != kb) | (a.data != b.data)))
        if mismatch.any():
            i = int(np.nonzero(mismatch)[0][0])
            raise StreamProtocolError(
                f"alu({self.op}): control mismatch {a.token_at(i)} vs "
                f"{b.token_at(i)} at position {i}"
            )
        both_empty = (ka == EMPTY) & (kb == EMPTY)
        compute = ~ctrl & ~both_empty
        out_kinds = np.where(compute, np.int8(VAL), ka)

        if a.objs is None and b.objs is None:
            # Scalar fast path: one vectorized op over the value columns
            # (EMPTY payloads are zero by construction, matching _as_value).
            result = _vec_binary(self.op, a.data, b.data)
            out_data = np.where(compute, result, a.data)
            stats.ops += int(np.count_nonzero(compute))
            out = TokenStream(out_kinds, out_data)
            stats.tokens_out += n
            return {"out": out}

        pos = np.nonzero(compute)[0]
        va_list = _value_list(a, pos)
        vb_list = _value_list(b, pos)
        shape_a = _uniform_block_shape(va_list)
        shape_b = _uniform_block_shape(vb_list)
        out_data = np.where(ctrl, a.data, 0.0)
        if shape_a is not None and shape_a == shape_b and len(pos):
            blocks_a = np.stack(va_list)
            blocks_b = np.stack(vb_list)
            if self.op in ("bmm", "bmt") and len(shape_a) == 2:
                other = (
                    blocks_b if self.op == "bmm" else blocks_b.transpose(0, 2, 1)
                )
                res = np.matmul(blocks_a, other)
                stats.ops += len(pos) * 2 * res.shape[1] * res.shape[2] * shape_a[1]
            else:
                res = _vec_binary(self.op, blocks_a, blocks_b)
                stats.ops += res.size
            objs = _objs_from_list(list(res), n, pos)
            out = TokenStream(out_kinds, out_data, objs)
            stats.tokens_out += n
            return {"out": out}

        # Mixed scalar/block payloads: per-token fallback with legacy
        # semantics (and legacy FLOP accounting).
        fn = self._fn
        objs = np.full(n, None, dtype=object)
        for i, va, vb in zip(pos.tolist(), va_list, vb_list):
            result = fn(va, vb)
            if (
                self.op in ("bmm", "bmt")
                and isinstance(result, np.ndarray)
                and result.ndim == 2
            ):
                stats.ops += 2 * result.shape[0] * result.shape[1] * (
                    va.shape[1]
                    if isinstance(va, np.ndarray) and va.ndim == 2
                    else 1
                )
            else:
                stats.ops += _flops_of(result)
            if isinstance(result, np.ndarray):
                objs[i] = result
            else:
                out_data[i] = result
        out = TokenStream(out_kinds, out_data, objs)
        stats.tokens_out += n
        return {"out": out}


def _value_list(ts: TokenStream, pos: np.ndarray) -> List[Any]:
    """Payload values at ``pos`` with ``_as_value`` semantics (EMPTY -> 0)."""
    data = ts.data
    objs = ts.objs
    if objs is None:
        return [data[i].item() for i in pos.tolist()]
    out: List[Any] = []
    for i in pos.tolist():
        o = objs[i]
        out.append(o if o is not None else data[i].item())
    return out


def _vec_binary(op: str, a, b):
    """Vectorized counterparts of the scalar binary ops (bitwise-identical
    elementwise arithmetic; ``div`` keeps the divide-by-zero -> 0 rule)."""
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op in ("mul", "bmm", "bmt"):
        # Scalar bmm/bmt degrade to multiplication, as in _block_mm.
        return a * b
    if op == "div":
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(b != 0.0, a / b, 0.0)
    if op == "max":
        return np.maximum(a, b)
    if op == "min":
        return np.minimum(a, b)
    raise ValueError(f"unknown binary op {op!r}")


def _gelu(x):
    """tanh approximation of GeLU, numpy-broadcastable."""
    return 0.5 * x * (1.0 + np.tanh(0.7978845608028654 * (x + 0.044715 * x * x * x)))


_UNARY_OPS: Dict[str, Callable] = {
    "relu": lambda x: np.maximum(x, 0.0),
    "gelu": _gelu,
    "exp": np.exp,
    "neg": lambda x: -x,
    "abs": np.abs,
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "tanh": np.tanh,
    "sqrt": np.sqrt,
    "identity": lambda x: x,
    "square": lambda x: x * x,
}


class UnaryALU(Primitive):
    """Elementwise unary operator, optionally with scale/offset.

    Computes ``f(scale * x + offset)`` per stored value.  Operates on stored
    (nonzero) values only — the zero-preserving semantics sparse ML relies on
    (masked entries are absent, not zero-valued).
    """

    kind = "ualu"
    in_ports = ("a",)
    out_ports = ("out",)

    def __init__(self, op: str, scale: float = 1.0, offset: float = 0.0) -> None:
        if op not in _UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        self.scale = scale
        self.offset = offset
        self._fn = _UNARY_OPS[op]

    def __getstate__(self):
        # Same idiom as BinaryALU: the lambda is restored from the op table.
        state = dict(self.__dict__)
        state.pop("_fn", None)
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._fn = _UNARY_OPS[self.op]

    def describe(self) -> str:
        extra = ""
        if self.scale != 1.0 or self.offset != 0.0:
            extra = f",{self.scale:g}x+{self.offset:g}"
        return f"ualu({self.op}{extra})"

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        a = ins["a"]
        stats.tokens_in += len(a)
        out: Stream = []
        for token in a:
            kind = token[0]
            if kind == VAL:
                x = token[1]
                if self.scale != 1.0 or self.offset != 0.0:
                    x = self.scale * x + self.offset
                result = self._fn(x)
                stats.ops += _flops_of(result)
                out.append((VAL, result))
            elif kind == EMPTY:
                out.append(token)
            else:
                out.append(token)
        stats.tokens_out += len(out)
        return {"out": out}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        a = ins["a"]
        n = len(a)
        stats.tokens_in += n
        kinds = a.kinds
        is_val = kinds == VAL
        scaled = self.scale != 1.0 or self.offset != 0.0

        if a.objs is None:
            x = a.data
            if scaled:
                x = self.scale * x + self.offset
            with np.errstate(all="ignore"):
                result = self._fn(x)
            out_data = np.where(is_val, result, a.data)
            stats.ops += int(np.count_nonzero(is_val))
            stats.tokens_out += n
            return {"out": TokenStream(kinds, out_data)}

        pos = np.nonzero(is_val)[0]
        values = _value_list(a, pos)
        shape = _uniform_block_shape(values)
        out_data = np.where(is_val, 0.0, a.data)
        if shape is not None and len(pos):
            x = np.stack(values)
            if scaled:
                x = self.scale * x + self.offset
            res = self._fn(x)
            stats.ops += res.size
            objs = _objs_from_list(list(res), n, pos)
            stats.tokens_out += n
            return {"out": TokenStream(kinds, out_data, objs)}

        objs = np.full(n, None, dtype=object)
        for i, x in zip(pos.tolist(), values):
            if scaled:
                x = self.scale * x + self.offset
            result = self._fn(x)
            stats.ops += _flops_of(result)
            if isinstance(result, np.ndarray):
                objs[i] = result
            else:
                out_data[i] = result
        stats.tokens_out += n
        return {"out": TokenStream(kinds, out_data, objs)}


class ValArray(Primitive):
    """Fetch values from a tensor's value array given a reference stream.

    EMPTY references produce explicit zero values (union padding).  Blocked
    tensors return dense numpy blocks.  Reads are charged to DRAM.
    """

    kind = "array"
    in_ports = ("ref",)
    out_ports = ("val",)

    def __init__(self, tensor_name: str, dram: bool = True) -> None:
        self.tensor_name = tensor_name
        self.dram = dram

    def describe(self) -> str:
        return f"array({self.tensor_name})"

    def touches_dram(self) -> bool:
        return self.dram

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        tensor = ctx.tensor(self.tensor_name)
        values = tensor.values
        blocked = values.ndim > 1
        zero = np.zeros(values.shape[1:]) if blocked else 0.0
        elem_bytes = int(np.prod(values.shape[1:])) * 8 if blocked else 8
        out: Stream = []
        stats.tokens_in += len(ins["ref"])
        access_bytes = 0
        for token in ins["ref"]:
            kind = token[0]
            if kind == REF:
                out.append((VAL, values[token[1]]))
                access_bytes += elem_bytes
            elif kind == EMPTY:
                out.append((VAL, zero))
            elif kind == STOP or kind == DONE:
                out.append(token)
            else:
                raise StreamProtocolError(f"array got unexpected token kind {kind}")
        if self.dram:
            footprint = int(values.size) * 8
            if footprint <= ctx.scratchpad_bytes:
                # Fits on chip: only compulsory traffic hits DRAM.
                stats.dram_reads += min(access_bytes, footprint)
            else:
                stats.dram_reads += access_bytes
        stats.tokens_out += len(out)
        return {"val": out}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        ref_in = ins["ref"]
        tensor = ctx.tensor(self.tensor_name)
        values = tensor.values
        blocked = values.ndim > 1
        n = len(ref_in)
        stats.tokens_in += n
        kinds = ref_in.kinds
        bad = np.nonzero((kinds == CRD) | (kinds == VAL))[0]
        if bad.size:
            raise StreamProtocolError(
                f"array got unexpected token kind {int(kinds[bad[0]])}"
            )
        is_ref = kinds == REF
        is_empty = kinds == EMPTY
        ref_pos = np.nonzero(is_ref)[0]
        idx = ref_in.data[ref_pos].astype(np.int64)
        out_kinds = np.where(is_ref | is_empty, np.int8(VAL), kinds)
        out_data = np.where(is_ref | is_empty, 0.0, ref_in.data)
        objs = None
        if blocked:
            elem_bytes = int(np.prod(values.shape[1:])) * 8
            objs = _objs_from_list(list(values[idx]), n, ref_pos)
            empty_pos = np.nonzero(is_empty)[0]
            if empty_pos.size:
                # One shared zero block, as in the legacy kernel.
                zero = np.zeros(values.shape[1:])
                fill = np.empty(len(empty_pos), dtype=object)
                fill.fill(zero)
                objs[empty_pos] = fill
        else:
            elem_bytes = 8
            out_data[ref_pos] = values[idx]
        access_bytes = elem_bytes * len(ref_pos)
        if self.dram:
            footprint = int(values.size) * 8
            if footprint <= ctx.scratchpad_bytes:
                stats.dram_reads += min(access_bytes, footprint)
            else:
                stats.dram_reads += access_bytes
        stats.tokens_out += n
        return {"val": TokenStream(out_kinds, out_data, objs)}
