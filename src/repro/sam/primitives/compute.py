"""Compute primitives: binary/unary ALUs and value arrays.

ALUs operate elementwise over positionally aligned value streams.  Values may
be scalars or dense numpy blocks (blocked formats); all operators broadcast
through numpy, and the ``bmm`` operator performs block matrix multiplication
for contractions over blocked tensors.  EMPTY tokens behave as zeros.
"""

from __future__ import annotations

import math
from typing import Callable, Dict

import numpy as np

from ..token import (
    CRD,
    DONE,
    EMPTY,
    REF,
    STOP,
    VAL,
    Stream,
    StreamProtocolError,
)
from .base import ExecutionContext, NodeStats, Primitive


def _as_value(token, zero=0.0):
    """Payload of a val token; EMPTY becomes zero."""
    if token[0] == EMPTY:
        return zero
    return token[1]


def _flops_of(value) -> int:
    """FLOPs charged for one elementwise op on a scalar or block."""
    if isinstance(value, np.ndarray):
        return int(value.size)
    return 1


_BINARY_OPS: Dict[str, Callable] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b if not isinstance(b, float) or b != 0.0 else 0.0,
    "max": lambda a, b: np.maximum(a, b),
    "min": lambda a, b: np.minimum(a, b),
    "bmm": lambda a, b: _block_mm(a, b),
    "bmt": lambda a, b: _block_mmt(a, b),
}


def _block_mm(a, b):
    """Block product: matmul for 2-D blocks, scalar multiply otherwise."""
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray) and a.ndim == 2:
        return a @ b
    return a * b


def _block_mmt(a, b):
    """Transposed block product ``a @ b.T`` (QK^T in block space)."""
    if isinstance(a, np.ndarray) and isinstance(b, np.ndarray) and a.ndim == 2:
        return a @ b.T
    return a * b


class BinaryALU(Primitive):
    """Elementwise binary operator over two aligned value streams."""

    kind = "alu"
    in_ports = ("a", "b")
    out_ports = ("out",)

    def __init__(self, op: str) -> None:
        if op not in _BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self.op = op
        self._fn = _BINARY_OPS[op]

    def describe(self) -> str:
        return f"alu({self.op})"

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        a, b = ins["a"], ins["b"]
        if len(a) != len(b):
            raise StreamProtocolError(
                f"alu({self.op}): misaligned inputs ({len(a)} vs {len(b)})"
            )
        stats.tokens_in += len(a) + len(b)
        out: Stream = []
        fn = self._fn
        for ta, tb in zip(a, b):
            ka, kb = ta[0], tb[0]
            if ka == STOP or ka == DONE:
                if ta != tb:
                    raise StreamProtocolError(
                        f"alu({self.op}): control mismatch {ta} vs {tb}"
                    )
                out.append(ta)
            elif ka == EMPTY and kb == EMPTY:
                out.append(ta)
            else:
                va = _as_value(ta)
                vb = _as_value(tb)
                result = fn(va, vb)
                if self.op in ("bmm", "bmt") and isinstance(result, np.ndarray) and result.ndim == 2:
                    stats.ops += 2 * result.shape[0] * result.shape[1] * (
                        va.shape[1] if isinstance(va, np.ndarray) and va.ndim == 2 else 1
                    )
                else:
                    stats.ops += _flops_of(result)
                out.append((VAL, result))
        stats.tokens_out += len(out)
        return {"out": out}


def _gelu(x):
    """tanh approximation of GeLU, numpy-broadcastable."""
    return 0.5 * x * (1.0 + np.tanh(0.7978845608028654 * (x + 0.044715 * x * x * x)))


_UNARY_OPS: Dict[str, Callable] = {
    "relu": lambda x: np.maximum(x, 0.0),
    "gelu": _gelu,
    "exp": np.exp,
    "neg": lambda x: -x,
    "abs": np.abs,
    "sigmoid": lambda x: 1.0 / (1.0 + np.exp(-x)),
    "tanh": np.tanh,
    "sqrt": np.sqrt,
    "identity": lambda x: x,
    "square": lambda x: x * x,
}


class UnaryALU(Primitive):
    """Elementwise unary operator, optionally with scale/offset.

    Computes ``f(scale * x + offset)`` per stored value.  Operates on stored
    (nonzero) values only — the zero-preserving semantics sparse ML relies on
    (masked entries are absent, not zero-valued).
    """

    kind = "ualu"
    in_ports = ("a",)
    out_ports = ("out",)

    def __init__(self, op: str, scale: float = 1.0, offset: float = 0.0) -> None:
        if op not in _UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        self.op = op
        self.scale = scale
        self.offset = offset
        self._fn = _UNARY_OPS[op]

    def describe(self) -> str:
        extra = ""
        if self.scale != 1.0 or self.offset != 0.0:
            extra = f",{self.scale:g}x+{self.offset:g}"
        return f"ualu({self.op}{extra})"

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        a = ins["a"]
        stats.tokens_in += len(a)
        out: Stream = []
        for token in a:
            kind = token[0]
            if kind == VAL:
                x = token[1]
                if self.scale != 1.0 or self.offset != 0.0:
                    x = self.scale * x + self.offset
                result = self._fn(x)
                stats.ops += _flops_of(result)
                out.append((VAL, result))
            elif kind == EMPTY:
                out.append(token)
            else:
                out.append(token)
        stats.tokens_out += len(out)
        return {"out": out}


class ValArray(Primitive):
    """Fetch values from a tensor's value array given a reference stream.

    EMPTY references produce explicit zero values (union padding).  Blocked
    tensors return dense numpy blocks.  Reads are charged to DRAM.
    """

    kind = "array"
    in_ports = ("ref",)
    out_ports = ("val",)

    def __init__(self, tensor_name: str, dram: bool = True) -> None:
        self.tensor_name = tensor_name
        self.dram = dram

    def describe(self) -> str:
        return f"array({self.tensor_name})"

    def touches_dram(self) -> bool:
        return self.dram

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        tensor = ctx.tensor(self.tensor_name)
        values = tensor.values
        blocked = values.ndim > 1
        zero = np.zeros(values.shape[1:]) if blocked else 0.0
        elem_bytes = int(np.prod(values.shape[1:])) * 8 if blocked else 8
        out: Stream = []
        stats.tokens_in += len(ins["ref"])
        access_bytes = 0
        for token in ins["ref"]:
            kind = token[0]
            if kind == REF:
                out.append((VAL, values[token[1]]))
                access_bytes += elem_bytes
            elif kind == EMPTY:
                out.append((VAL, zero))
            elif kind == STOP or kind == DONE:
                out.append(token)
            else:
                raise StreamProtocolError(f"array got unexpected token kind {kind}")
        if self.dram:
            footprint = int(values.size) * 8
            if footprint <= ctx.scratchpad_bytes:
                # Fits on chip: only compulsory traffic hits DRAM.
                stats.dram_reads += min(access_bytes, footprint)
            else:
                stats.dram_reads += access_bytes
        stats.tokens_out += len(out)
        return {"val": out}
