"""Fiber-granularity ML primitives: streaming softmax and normalization.

These are the SAMML additions the paper makes to SAM for sparse ML models
(Section 7): nonlinear operators that need a whole innermost fiber of values
at once.  Each buffers the values of the current innermost fiber and applies
the operator when the fiber closes, preserving the stream's control
structure exactly.

Softmax follows sparse-attention semantics: it normalizes over the *stored*
entries of a fiber (absent coordinates behave as masked, i.e. ``-inf``
logits), which is what masked block-sparse attention requires.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from ..token import (
    CRD,
    DONE,
    EMPTY,
    REF,
    STOP,
    VAL,
    Stream,
    StreamProtocolError,
    TokenStream,
)
from .base import ExecutionContext, NodeStats, Primitive


def _apply_over_fiber(values: List[Any], fn) -> List[Any]:
    """Apply ``fn`` across a fiber that may hold scalars or 2-D blocks.

    Blocks are concatenated along their last axis so row-wise operators see
    the whole logical row, then split back into blocks.
    """
    if not values:
        return values
    if isinstance(values[0], np.ndarray) and values[0].ndim == 2:
        widths = [v.shape[1] for v in values]
        row = np.concatenate(values, axis=1)
        row = fn(row, axis=1)
        out: List[Any] = []
        start = 0
        for w in widths:
            out.append(row[:, start : start + w])
            start += w
        return out
    arr = fn(np.asarray(values, dtype=np.float64), axis=0)
    return [float(x) for x in arr]


def _softmax(x: np.ndarray, axis: int) -> np.ndarray:
    shifted = x - np.max(x, axis=axis, keepdims=True)
    e = np.exp(shifted)
    return e / np.sum(e, axis=axis, keepdims=True)


def _layernorm(x: np.ndarray, axis: int, eps: float = 1e-5) -> np.ndarray:
    mean = np.mean(x, axis=axis, keepdims=True)
    var = np.var(x, axis=axis, keepdims=True)
    return (x - mean) / np.sqrt(var + eps)


class FiberOp(Primitive):
    """Base for fiber-buffered operators on the innermost level."""

    kind = "fiberop"
    in_ports = ("val",)
    out_ports = ("out",)
    flops_per_elem = 4

    def _fn(self, x: np.ndarray, axis: int) -> np.ndarray:
        raise NotImplementedError

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        out: Stream = []
        buffer: List[Any] = []
        stats.tokens_in += len(ins["val"])

        def flush() -> None:
            if buffer:
                results = _apply_over_fiber(buffer, self._fn)
                for r in results:
                    out.append((VAL, r))
                    stats.ops += self.flops_per_elem * (
                        int(r.size) if isinstance(r, np.ndarray) else 1
                    )
                buffer.clear()

        for token in ins["val"]:
            kind = token[0]
            if kind == VAL:
                buffer.append(token[1])
            elif kind == EMPTY:
                buffer.append(0.0)
            elif kind == STOP or kind == DONE:
                flush()
                out.append(token)
            else:
                raise StreamProtocolError(f"{self.kind} got token kind {kind}")
        stats.tokens_out += len(out)
        return {"out": out}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        """Columnar fiber op: slice per fiber, skip the token walk.

        The numpy operator is applied to exactly the same per-fiber value
        array the legacy path builds token by token, so results are
        bit-identical; only the buffering loop is eliminated.
        """
        ts = ins["val"]
        n = len(ts)
        stats.tokens_in += n
        kinds = ts.kinds
        bad = np.nonzero((kinds == CRD) | (kinds == REF))[0]
        if bad.size:
            raise StreamProtocolError(
                f"{self.kind} got token kind {int(kinds[bad[0]])}"
            )
        ctrl_pos = np.nonzero((kinds == STOP) | (kinds == DONE))[0]
        pay_mask = (kinds == VAL) | (kinds == EMPTY)
        pay_pos = np.nonzero(pay_mask)[0]
        out_kinds = np.where(pay_mask, np.int8(VAL), kinds)
        out_data = ts.data.copy()
        # Fiber boundaries within the payload-position array.
        bounds = np.searchsorted(pay_pos, ctrl_pos)
        blocked = ts.objs is not None
        out_objs = np.full(n, None, dtype=object) if blocked else None
        if blocked:
            values_all = [
                ts.objs[i] if ts.objs[i] is not None else ts.data[i].item()
                for i in pay_pos.tolist()
            ]
        else:
            values_all = ts.data[pay_pos]
        start = 0
        for end in bounds.tolist():
            if end > start:
                if blocked:
                    results = _apply_over_fiber(values_all[start:end], self._fn)
                    for j, r in zip(range(start, end), results):
                        stats.ops += self.flops_per_elem * (
                            int(r.size) if isinstance(r, np.ndarray) else 1
                        )
                        if isinstance(r, np.ndarray):
                            out_objs[pay_pos[j]] = r
                        else:
                            out_data[pay_pos[j]] = r
                else:
                    seg = values_all[start:end]
                    out_data[pay_pos[start:end]] = self._fn(seg, axis=0)
                    stats.ops += self.flops_per_elem * (end - start)
            start = end
        out = TokenStream(out_kinds, out_data, out_objs)
        stats.tokens_out += n
        return {"out": out}


class FiberSoftmax(FiberOp):
    """Softmax over each innermost fiber's stored values."""

    kind = "softmax"
    flops_per_elem = 5

    def _fn(self, x: np.ndarray, axis: int) -> np.ndarray:
        return _softmax(x, axis)


class FiberNorm(FiberOp):
    """Mean/variance normalization (layernorm core) over innermost fibers."""

    kind = "layernorm"
    flops_per_elem = 6

    def _fn(self, x: np.ndarray, axis: int) -> np.ndarray:
        return _layernorm(x, axis)


class FiberMax(FiberOp):
    """Running max across a fiber, broadcast back to each element."""

    kind = "fibermax"
    flops_per_elem = 1

    def _fn(self, x: np.ndarray, axis: int) -> np.ndarray:
        return np.broadcast_to(np.max(x, axis=axis, keepdims=True), x.shape).copy()
