"""Repeaters: broadcast a stream across the coordinates of another.

A repeater re-emits its current *base* token (a reference or value) once per
coordinate of the *rep* (repeat-signal) stream, advancing to the next base
token at each fiber boundary of the rep stream.  The emitted control
structure comes entirely from the rep stream, which is how SAM broadcasts an
operand across index variables it does not itself carry (e.g., repeating
matrix ``X``'s root reference across every row coordinate ``i`` of ``A``
in SpMM, Figure 9 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from ..token import (
    CRD,
    DONE,
    DONE_TOKEN,
    EMPTY,
    REF,
    STOP,
    VAL,
    Stream,
    StreamProtocolError,
    Token,
)
from .base import ExecutionContext, NodeStats, Primitive


def _payloads(stream: Stream) -> Iterator[Token]:
    """Yield only payload-carrying tokens of ``stream``."""
    for token in stream:
        kind = token[0]
        if kind == REF or kind == VAL or kind == EMPTY or kind == CRD:
            yield token


class Repeat(Primitive):
    """Repeat base tokens per rep-stream coordinate.

    Ports: ``base`` (refs, values, or coordinates to broadcast) and ``rep``
    (a coordinate stream one nesting level deeper that defines the
    repetition structure) in; ``out`` out.

    The two streams are related by construction: the rep stream contains one
    fiber per base payload token, and a rep stop of level ``n + 1`` mirrors a
    base stop of level ``n``.  The repeater walks both streams in lockstep:

    * rep CRD: emit the current base payload;
    * rep STOP(0): emit it and consume one base payload;
    * rep STOP(n >= 1): emit it, consume one base payload if one is current,
      then consume the base's matching STOP(n - 1);
    * rep DONE: emit done (base must be at its done token).

    This disambiguates empty fibers on either side (an empty base segment
    and an empty repeated fiber produce identical rep-token patterns but
    different base cursor states).
    """

    kind = "repeat"
    in_ports = ("base", "rep")
    out_ports = ("out",)

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        base, rep = ins["base"], ins["rep"]
        stats.tokens_in += len(base) + len(rep)
        out: Stream = []
        bi = 0

        def base_kind() -> int:
            return base[bi][0] if bi < len(base) else DONE

        for token in rep:
            kind = token[0]
            if kind == CRD:
                bk = base_kind()
                if bk == STOP or bk == DONE:
                    raise StreamProtocolError(
                        "repeat: rep stream has coordinates but base has none current"
                    )
                out.append(base[bi])
            elif kind == STOP:
                out.append(token)
                bk = base_kind()
                if bk != STOP and bk != DONE:
                    bi += 1  # consume the payload this fiber repeated
                if token[1] >= 1:
                    if base_kind() != STOP:
                        raise StreamProtocolError(
                            f"repeat: rep stop {token[1]} expects a base stop "
                            f"{token[1] - 1}, found {base[bi] if bi < len(base) else 'EOS'}"
                        )
                    if base[bi][1] != token[1] - 1:
                        raise StreamProtocolError(
                            f"repeat: rep stop {token[1]} mismatches base stop "
                            f"{base[bi][1]}"
                        )
                    bi += 1
            elif kind == DONE:
                out.append(DONE_TOKEN)
            else:
                raise StreamProtocolError(
                    f"repeat: unexpected token kind {kind} on rep stream"
                )
        stats.tokens_out += len(out)
        return {"out": out}


class RepeatSigGen(Primitive):
    """Identity view of a coordinate stream used as a repeat signal.

    SAM separates repeat-signal generation from repetition; in this
    implementation the signal *is* the coordinate stream, so the generator is
    a pass-through kept for graph fidelity (it shows up as an explicit node
    in generated graphs, mirroring the paper's diagrams).
    """

    kind = "repsig"
    in_ports = ("crd",)
    out_ports = ("out",)

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        stream = list(ins["crd"])
        stats.tokens_in += len(stream)
        stats.tokens_out += len(stream)
        return {"out": stream}


class ScalarRepeat(Primitive):
    """Broadcast a single payload across every coordinate of a rep stream.

    Used when a rebuilt (recompute-fused) producer pulls an operand that does
    not carry the driver index: the operand's root reference is broadcast to
    every position of the driver's (arbitrarily deeply nested) coordinate
    stream.  Stops and done pass through unchanged.
    """

    kind = "srepeat"
    op_class = "repeat"
    in_ports = ("base", "rep")
    out_ports = ("out",)

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        base, rep = ins["base"], ins["rep"]
        stats.tokens_in += len(base) + len(rep)
        payloads = [t for t in base if t[0] not in (STOP, DONE)]
        if len(payloads) != 1:
            raise StreamProtocolError(
                f"scalar repeat expects exactly one base payload, got {len(payloads)}"
            )
        payload = payloads[0]
        out: Stream = []
        for token in rep:
            kind = token[0]
            if kind == CRD:
                out.append(payload)
            elif kind == STOP or kind == DONE:
                out.append(token)
            else:
                raise StreamProtocolError(
                    f"scalar repeat: unexpected token kind {kind} on rep stream"
                )
        stats.tokens_out += len(out)
        return {"out": out}
