"""Repeaters: broadcast a stream across the coordinates of another.

A repeater re-emits its current *base* token (a reference or value) once per
coordinate of the *rep* (repeat-signal) stream, advancing to the next base
token at each fiber boundary of the rep stream.  The emitted control
structure comes entirely from the rep stream, which is how SAM broadcasts an
operand across index variables it does not itself carry (e.g., repeating
matrix ``X``'s root reference across every row coordinate ``i`` of ``A``
in SpMM, Figure 9 of the paper).
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

import numpy as np

from ..token import (
    CRD,
    DONE,
    DONE_TOKEN,
    EMPTY,
    REF,
    STOP,
    VAL,
    Stream,
    StreamProtocolError,
    Token,
    TokenStream,
)
from .base import ExecutionContext, NodeStats, Primitive


def _payloads(stream: Stream) -> Iterator[Token]:
    """Yield only payload-carrying tokens of ``stream``."""
    for token in stream:
        kind = token[0]
        if kind == REF or kind == VAL or kind == EMPTY or kind == CRD:
            yield token


class Repeat(Primitive):
    """Repeat base tokens per rep-stream coordinate.

    Ports: ``base`` (refs, values, or coordinates to broadcast) and ``rep``
    (a coordinate stream one nesting level deeper that defines the
    repetition structure) in; ``out`` out.

    The two streams are related by construction: the rep stream contains one
    fiber per base payload token, and a rep stop of level ``n + 1`` mirrors a
    base stop of level ``n``.  The repeater walks both streams in lockstep:

    * rep CRD: emit the current base payload;
    * rep STOP(0): emit it and consume one base payload;
    * rep STOP(n >= 1): emit it, consume one base payload if one is current,
      then consume the base's matching STOP(n - 1);
    * rep DONE: emit done (base must be at its done token).

    This disambiguates empty fibers on either side (an empty base segment
    and an empty repeated fiber produce identical rep-token patterns but
    different base cursor states).
    """

    kind = "repeat"
    in_ports = ("base", "rep")
    out_ports = ("out",)

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        base, rep = ins["base"], ins["rep"]
        stats.tokens_in += len(base) + len(rep)
        out: Stream = []
        bi = 0

        def base_kind() -> int:
            return base[bi][0] if bi < len(base) else DONE

        for token in rep:
            kind = token[0]
            if kind == CRD:
                bk = base_kind()
                if bk == STOP or bk == DONE:
                    raise StreamProtocolError(
                        "repeat: rep stream has coordinates but base has none current"
                    )
                out.append(base[bi])
            elif kind == STOP:
                out.append(token)
                bk = base_kind()
                if bk != STOP and bk != DONE:
                    bi += 1  # consume the payload this fiber repeated
                if token[1] >= 1:
                    if base_kind() != STOP:
                        raise StreamProtocolError(
                            f"repeat: rep stop {token[1]} expects a base stop "
                            f"{token[1] - 1}, found {base[bi] if bi < len(base) else 'EOS'}"
                        )
                    if base[bi][1] != token[1] - 1:
                        raise StreamProtocolError(
                            f"repeat: rep stop {token[1]} mismatches base stop "
                            f"{base[bi][1]}"
                        )
                    bi += 1
            elif kind == DONE:
                out.append(DONE_TOKEN)
            else:
                raise StreamProtocolError(
                    f"repeat: unexpected token kind {kind} on rep stream"
                )
        stats.tokens_out += len(out)
        return {"out": out}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        """Columnar repeat: Python over *fiber boundaries*, numpy over crds.

        The base-cursor walk (which base payload each rep fiber repeats)
        only advances at rep stop tokens, so it runs once per fiber; the
        per-coordinate broadcast — the part that scales with stream size —
        is a single gather.
        """
        base, rep = ins["base"], ins["rep"]
        stats.tokens_in += len(base) + len(rep)
        rk = rep.kinds
        n = len(rk)
        bad = np.nonzero((rk == REF) | (rk == VAL) | (rk == EMPTY))[0]
        if bad.size:
            raise StreamProtocolError(
                f"repeat: unexpected token kind {int(rk[bad[0]])} on rep stream"
            )
        base_kinds = base.kinds.tolist()
        base_data = base.data
        nb = len(base_kinds)
        stop_pos = np.nonzero(rk == STOP)[0]
        stop_levels = rep.data[stop_pos].astype(np.int64).tolist()

        # Cursor walk over fiber boundaries: fiber f repeats base[cursor_f].
        cursors = [0]
        bi = 0
        for lvl in stop_levels:
            bk = base_kinds[bi] if bi < nb else DONE
            if bk != STOP and bk != DONE:
                bi += 1  # consume the payload this fiber repeated
            if lvl >= 1:
                bk = base_kinds[bi] if bi < nb else DONE
                if bk != STOP:
                    found = base.token_at(bi) if bi < nb else "EOS"
                    raise StreamProtocolError(
                        f"repeat: rep stop {lvl} expects a base stop "
                        f"{lvl - 1}, found {found}"
                    )
                if int(base_data[bi]) != lvl - 1:
                    raise StreamProtocolError(
                        f"repeat: rep stop {lvl} mismatches base stop "
                        f"{int(base_data[bi])}"
                    )
                bi += 1
            cursors.append(bi)

        crd_pos = np.nonzero(rk == CRD)[0]
        out_kinds = rk.copy()
        out_data = rep.data.copy()
        out_objs = None
        if crd_pos.size:
            fiber_of_crd = np.searchsorted(stop_pos, crd_pos)
            src = np.asarray(cursors, dtype=np.int64)[fiber_of_crd]
            valid = src < nb
            src_k = np.where(valid, src, 0)
            kinds_at = base.kinds[src_k]
            payload_ok = valid & (kinds_at != STOP) & (kinds_at != DONE)
            if not payload_ok.all():
                raise StreamProtocolError(
                    "repeat: rep stream has coordinates but base has none current"
                )
            out_kinds[crd_pos] = kinds_at
            out_data[crd_pos] = base_data[src_k]
            if base.objs is not None:
                out_objs = np.full(n, None, dtype=object)
                out_objs[crd_pos] = base.objs[src_k]
        out = TokenStream(out_kinds, out_data, out_objs)
        stats.tokens_out += n
        return {"out": out}


class RepeatSigGen(Primitive):
    """Identity view of a coordinate stream used as a repeat signal.

    SAM separates repeat-signal generation from repetition; in this
    implementation the signal *is* the coordinate stream, so the generator is
    a pass-through kept for graph fidelity (it shows up as an explicit node
    in generated graphs, mirroring the paper's diagrams).
    """

    kind = "repsig"
    in_ports = ("crd",)
    out_ports = ("out",)

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        stream = list(ins["crd"])
        stats.tokens_in += len(stream)
        stats.tokens_out += len(stream)
        return {"out": stream}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        stream = ins["crd"]
        stats.tokens_in += len(stream)
        stats.tokens_out += len(stream)
        return {"out": stream}


class ScalarRepeat(Primitive):
    """Broadcast a single payload across every coordinate of a rep stream.

    Used when a rebuilt (recompute-fused) producer pulls an operand that does
    not carry the driver index: the operand's root reference is broadcast to
    every position of the driver's (arbitrarily deeply nested) coordinate
    stream.  Stops and done pass through unchanged.
    """

    kind = "srepeat"
    op_class = "repeat"
    in_ports = ("base", "rep")
    out_ports = ("out",)

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        base, rep = ins["base"], ins["rep"]
        stats.tokens_in += len(base) + len(rep)
        payloads = [t for t in base if t[0] not in (STOP, DONE)]
        if len(payloads) != 1:
            raise StreamProtocolError(
                f"scalar repeat expects exactly one base payload, got {len(payloads)}"
            )
        payload = payloads[0]
        out: Stream = []
        for token in rep:
            kind = token[0]
            if kind == CRD:
                out.append(payload)
            elif kind == STOP or kind == DONE:
                out.append(token)
            else:
                raise StreamProtocolError(
                    f"scalar repeat: unexpected token kind {kind} on rep stream"
                )
        stats.tokens_out += len(out)
        return {"out": out}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        base, rep = ins["base"], ins["rep"]
        stats.tokens_in += len(base) + len(rep)
        bk = base.kinds
        pay_pos = np.nonzero((bk != STOP) & (bk != DONE))[0]
        if len(pay_pos) != 1:
            raise StreamProtocolError(
                f"scalar repeat expects exactly one base payload, got {len(pay_pos)}"
            )
        p = int(pay_pos[0])
        rk = rep.kinds
        n = len(rk)
        bad = np.nonzero((rk != CRD) & (rk != STOP) & (rk != DONE))[0]
        if bad.size:
            raise StreamProtocolError(
                f"scalar repeat: unexpected token kind {int(rk[bad[0]])} on rep stream"
            )
        is_crd = rk == CRD
        out_kinds = np.where(is_crd, bk[p], rk)
        out_data = np.where(is_crd, base.data[p], rep.data)
        out_objs = None
        if base.objs is not None and base.objs[p] is not None:
            out_objs = np.full(n, None, dtype=object)
            fill = np.empty(int(np.count_nonzero(is_crd)), dtype=object)
            fill.fill(base.objs[p])
            out_objs[is_crd] = fill
        out = TokenStream(out_kinds, out_data, out_objs)
        stats.tokens_out += n
        return {"out": out}
