"""Stream joiners: intersect and union.

Joiners combine two coordinate streams that iterate the same index variable,
forwarding the payload streams that ride along with each side.  Intersection
keeps only coordinates present on both sides (multiplication); union keeps
all coordinates, emitting EMPTY padding on the side that lacks one
(addition).  Control tokens (stops/done) must agree between the two sides —
the protocol guarantees this when both streams iterate the same fused index.
"""

from __future__ import annotations

from typing import Dict, List

from ..token import (
    CRD,
    DONE,
    EMPTY_TOKEN,
    STOP,
    Stream,
    StreamProtocolError,
)
from .base import ExecutionContext, NodeStats, Primitive


def _require_aligned(stream_a: Stream, stream_b: Stream, who: str) -> None:
    if len(stream_a) != len(stream_b):
        raise StreamProtocolError(
            f"{who}: crd and companion stream lengths differ "
            f"({len(stream_a)} vs {len(stream_b)})"
        )


class Intersect(Primitive):
    """Two-sided coordinate intersection.

    Ports: ``crd_a``/``ref_a`` and ``crd_b``/``ref_b`` in; ``crd``, ``ref_a``,
    ``ref_b`` out.  The ``ref`` streams are positionally aligned with their
    ``crd`` streams and may carry references *or* values (fused intermediate
    value streams are filtered the same way).
    """

    kind = "intersect"
    in_ports = ("crd_a", "ref_a", "crd_b", "ref_b")
    out_ports = ("crd", "ref_a", "ref_b")

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        crd_a, ref_a = ins["crd_a"], ins["ref_a"]
        crd_b, ref_b = ins["crd_b"], ins["ref_b"]
        _require_aligned(crd_a, ref_a, "intersect(a)")
        _require_aligned(crd_b, ref_b, "intersect(b)")
        stats.tokens_in += len(crd_a) + len(crd_b) + len(ref_a) + len(ref_b)

        out_crd: Stream = []
        out_ra: Stream = []
        out_rb: Stream = []
        ia = ib = 0
        while ia < len(crd_a) and ib < len(crd_b):
            ta, tb = crd_a[ia], crd_b[ib]
            ka, kb = ta[0], tb[0]
            if ka == CRD and kb == CRD:
                if ta[1] == tb[1]:
                    out_crd.append(ta)
                    out_ra.append(ref_a[ia])
                    out_rb.append(ref_b[ib])
                    ia += 1
                    ib += 1
                elif ta[1] < tb[1]:
                    ia += 1
                else:
                    ib += 1
            elif ka == CRD:
                ia += 1  # drain a until its control token
            elif kb == CRD:
                ib += 1
            else:
                # Both control: must agree.
                if ta != tb:
                    raise StreamProtocolError(
                        f"intersect control mismatch: {ta} vs {tb}"
                    )
                out_crd.append(ta)
                out_ra.append(ta)
                out_rb.append(ta)
                ia += 1
                ib += 1
                if ka == DONE:
                    break
        stats.tokens_out += len(out_crd) + len(out_ra) + len(out_rb)
        return {"crd": out_crd, "ref_a": out_ra, "ref_b": out_rb}


class Union(Primitive):
    """Two-sided coordinate union with EMPTY padding for absent sides."""

    kind = "union"
    in_ports = ("crd_a", "ref_a", "crd_b", "ref_b")
    out_ports = ("crd", "ref_a", "ref_b")

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        crd_a, ref_a = ins["crd_a"], ins["ref_a"]
        crd_b, ref_b = ins["crd_b"], ins["ref_b"]
        _require_aligned(crd_a, ref_a, "union(a)")
        _require_aligned(crd_b, ref_b, "union(b)")
        stats.tokens_in += len(crd_a) + len(crd_b) + len(ref_a) + len(ref_b)

        out_crd: Stream = []
        out_ra: Stream = []
        out_rb: Stream = []
        ia = ib = 0
        while ia < len(crd_a) and ib < len(crd_b):
            ta, tb = crd_a[ia], crd_b[ib]
            ka, kb = ta[0], tb[0]
            if ka == CRD and kb == CRD:
                if ta[1] == tb[1]:
                    out_crd.append(ta)
                    out_ra.append(ref_a[ia])
                    out_rb.append(ref_b[ib])
                    ia += 1
                    ib += 1
                elif ta[1] < tb[1]:
                    out_crd.append(ta)
                    out_ra.append(ref_a[ia])
                    out_rb.append(EMPTY_TOKEN)
                    ia += 1
                else:
                    out_crd.append(tb)
                    out_ra.append(EMPTY_TOKEN)
                    out_rb.append(ref_b[ib])
                    ib += 1
            elif ka == CRD:
                out_crd.append(ta)
                out_ra.append(ref_a[ia])
                out_rb.append(EMPTY_TOKEN)
                ia += 1
            elif kb == CRD:
                out_crd.append(tb)
                out_ra.append(EMPTY_TOKEN)
                out_rb.append(ref_b[ib])
                ib += 1
            else:
                if ta != tb:
                    raise StreamProtocolError(f"union control mismatch: {ta} vs {tb}")
                out_crd.append(ta)
                out_ra.append(ta)
                out_rb.append(ta)
                ia += 1
                ib += 1
                if ka == DONE:
                    break
        stats.tokens_out += len(out_crd) + len(out_ra) + len(out_rb)
        return {"crd": out_crd, "ref_a": out_ra, "ref_b": out_rb}
