"""Stream joiners: intersect and union.

Joiners combine two coordinate streams that iterate the same index variable,
forwarding the payload streams that ride along with each side.  Intersection
keeps only coordinates present on both sides (multiplication); union keeps
all coordinates, emitting EMPTY padding on the side that lacks one
(addition).  Control tokens (stops/done) must agree between the two sides —
the protocol guarantees this when both streams iterate the same fused index.

The columnar kernels reduce the two-pointer merge to sorted-array set
operations: coordinates are keyed by ``segment * C + coord`` (segments are
the runs between control tokens, which the protocol makes identical on both
sides), so one ``np.intersect1d``/``np.union1d`` call joins every fiber of
the stream at once.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from ..token import (
    CRD,
    DONE,
    EMPTY,
    EMPTY_TOKEN,
    STOP,
    Stream,
    StreamProtocolError,
    TokenStream,
    token_str,
)
from .base import ExecutionContext, NodeStats, Primitive


def _require_aligned(stream_a, stream_b, who: str, node: str = "?") -> None:
    if len(stream_a) != len(stream_b):
        raise StreamProtocolError(
            f"{who} at node {node}: crd and companion stream lengths differ "
            f"({len(stream_a)} vs {len(stream_b)})"
        )


def _control_mismatch(
    kind: str, node: str, pos_a: int, pos_b: int, ta, tb
) -> StreamProtocolError:
    return StreamProtocolError(
        f"{kind} control mismatch at node {node}: "
        f"{token_str(ta)} (crd_a position {pos_a}) vs "
        f"{token_str(tb)} (crd_b position {pos_b})"
    )


def _split_segments(
    crd: TokenStream, who: str, node: str
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Control/payload decomposition of a joiner coordinate stream.

    Returns ``(ctrl_idx, pay_idx, seg_of_payload, coords)``.  Raises when a
    non-CRD payload token rides the coordinate stream.
    """
    kinds = crd.kinds
    ctrl = (kinds == STOP) | (kinds == DONE)
    pay_idx = np.nonzero(~ctrl)[0]
    if pay_idx.size and not np.all(kinds[pay_idx] == CRD):
        bad = pay_idx[kinds[pay_idx] != CRD][0]
        raise StreamProtocolError(
            f"{who} at node {node}: unexpected token kind "
            f"{int(kinds[bad])} at position {int(bad)} of the crd stream"
        )
    ctrl_idx = np.nonzero(ctrl)[0]
    # Segment of a payload = number of control tokens before it.
    seg = np.cumsum(ctrl)[pay_idx]
    return ctrl_idx, pay_idx, seg, crd.data[pay_idx].astype(np.int64)


def _check_controls(
    crd_a: TokenStream,
    crd_b: TokenStream,
    ctrl_a: np.ndarray,
    ctrl_b: np.ndarray,
    kind: str,
    node: str,
) -> None:
    """Both sides must carry the same control skeleton."""
    n = min(len(ctrl_a), len(ctrl_b))
    ka = crd_a.kinds[ctrl_a[:n]]
    kb = crd_b.kinds[ctrl_b[:n]]
    da = crd_a.data[ctrl_a[:n]]
    db = crd_b.data[ctrl_b[:n]]
    bad = np.nonzero((ka != kb) | (da != db))[0]
    if bad.size:
        i = int(bad[0])
        pa, pb = int(ctrl_a[i]), int(ctrl_b[i])
        raise _control_mismatch(
            kind, node, pa, pb, crd_a.token_at(pa), crd_b.token_at(pb)
        )
    if len(ctrl_a) != len(ctrl_b):
        i = n  # first unmatched control on the longer side
        if len(ctrl_a) > len(ctrl_b):
            pa = int(ctrl_a[i])
            raise StreamProtocolError(
                f"{kind} control mismatch at node {node}: "
                f"{token_str(crd_a.token_at(pa))} at crd_a position {pa} "
                "has no matching control token on crd_b"
            )
        pb = int(ctrl_b[i])
        raise StreamProtocolError(
            f"{kind} control mismatch at node {node}: "
            f"{token_str(crd_b.token_at(pb))} at crd_b position {pb} "
            "has no matching control token on crd_a"
        )


def _payload_columns(
    ref: TokenStream, pos: np.ndarray, present: Optional[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Kind/data/obj columns of ``ref`` tokens forwarded at ``pos``.

    ``present`` (union only) marks which output slots have a token on this
    side; absent slots become EMPTY padding.
    """
    if present is None:
        kinds = ref.kinds[pos]
        data = ref.data[pos]
        objs = ref.objs[pos] if ref.objs is not None else None
        return kinds, data, objs
    n_out = len(present)
    kinds = np.full(n_out, EMPTY, dtype=np.int8)
    data = np.zeros(n_out, dtype=np.float64)
    kinds[present] = ref.kinds[pos]
    data[present] = ref.data[pos]
    objs = None
    if ref.objs is not None:
        objs = np.full(n_out, None, dtype=object)
        objs[present] = ref.objs[pos]
    return kinds, data, objs


class _Joiner(Primitive):
    """Shared structure of the two-sided coordinate joiners."""

    in_ports = ("crd_a", "ref_a", "crd_b", "ref_b")
    out_ports = ("crd", "ref_a", "ref_b")

    #: True for union (keep all coordinates, pad absent sides).
    keep_all = False

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        crd_a, ref_a = ins["crd_a"], ins["ref_a"]
        crd_b, ref_b = ins["crd_b"], ins["ref_b"]
        node = getattr(ctx, "current_node", "?")
        _require_aligned(crd_a, ref_a, f"{self.kind}(a)", node)
        _require_aligned(crd_b, ref_b, f"{self.kind}(b)", node)
        stats.tokens_in += len(crd_a) + len(crd_b) + len(ref_a) + len(ref_b)

        keep_all = self.keep_all
        out_crd: Stream = []
        out_ra: Stream = []
        out_rb: Stream = []
        ia = ib = 0
        while ia < len(crd_a) and ib < len(crd_b):
            ta, tb = crd_a[ia], crd_b[ib]
            ka, kb = ta[0], tb[0]
            if ka == CRD and kb == CRD:
                if ta[1] == tb[1]:
                    out_crd.append(ta)
                    out_ra.append(ref_a[ia])
                    out_rb.append(ref_b[ib])
                    ia += 1
                    ib += 1
                elif ta[1] < tb[1]:
                    if keep_all:
                        out_crd.append(ta)
                        out_ra.append(ref_a[ia])
                        out_rb.append(EMPTY_TOKEN)
                    ia += 1
                else:
                    if keep_all:
                        out_crd.append(tb)
                        out_ra.append(EMPTY_TOKEN)
                        out_rb.append(ref_b[ib])
                    ib += 1
            elif ka == CRD:
                if keep_all:
                    out_crd.append(ta)
                    out_ra.append(ref_a[ia])
                    out_rb.append(EMPTY_TOKEN)
                ia += 1  # drain a until its control token
            elif kb == CRD:
                if keep_all:
                    out_crd.append(tb)
                    out_ra.append(EMPTY_TOKEN)
                    out_rb.append(ref_b[ib])
                ib += 1
            else:
                # Both control: must agree.
                if ta != tb:
                    raise _control_mismatch(self.kind, node, ia, ib, ta, tb)
                out_crd.append(ta)
                out_ra.append(ta)
                out_rb.append(ta)
                ia += 1
                ib += 1
                if ka == DONE:
                    break
        stats.tokens_out += len(out_crd) + len(out_ra) + len(out_rb)
        return {"crd": out_crd, "ref_a": out_ra, "ref_b": out_rb}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        crd_a, ref_a = ins["crd_a"], ins["ref_a"]
        crd_b, ref_b = ins["crd_b"], ins["ref_b"]
        node = getattr(ctx, "current_node", "?")
        _require_aligned(crd_a, ref_a, f"{self.kind}(a)", node)
        _require_aligned(crd_b, ref_b, f"{self.kind}(b)", node)
        stats.tokens_in += len(crd_a) + len(crd_b) + len(ref_a) + len(ref_b)

        ctrl_a, pay_a, seg_a, coords_a = _split_segments(
            crd_a, f"{self.kind}(a)", node
        )
        ctrl_b, pay_b, seg_b, coords_b = _split_segments(
            crd_b, f"{self.kind}(b)", node
        )
        _check_controls(crd_a, crd_b, ctrl_a, ctrl_b, self.kind, node)

        # Key every coordinate by (segment, coord); C leaves headroom for a
        # per-segment sentinel used to order control tokens after payloads.
        cmax = 0
        if coords_a.size:
            cmax = int(coords_a.max())
        if coords_b.size:
            cmax = max(cmax, int(coords_b.max()))
        c_span = cmax + 2
        key_a = seg_a * c_span + coords_a
        key_b = seg_b * c_span + coords_b

        if not self.keep_all:
            # Keys are ascending (segments ordered, coords sorted per fiber),
            # so the returned index pairs are already in stream order.
            _, ja, jb = np.intersect1d(
                key_a, key_b, assume_unique=True, return_indices=True
            )
            pos_a = pay_a[ja]
            pos_b = pay_b[jb]
            out_coords = coords_a[ja]
            out_segs = seg_a[ja]
            ka, da, oa = _payload_columns(ref_a, pos_a, None)
            kb, db, ob = _payload_columns(ref_b, pos_b, None)
        else:
            keys = np.union1d(key_a, key_b)
            ia = np.searchsorted(key_a, keys)
            in_a = np.zeros(len(keys), dtype=bool)
            if len(key_a):
                ia_c = np.minimum(ia, len(key_a) - 1)
                in_a = key_a[ia_c] == keys
            ib = np.searchsorted(key_b, keys)
            in_b = np.zeros(len(keys), dtype=bool)
            if len(key_b):
                ib_c = np.minimum(ib, len(key_b) - 1)
                in_b = key_b[ib_c] == keys
            pos_a = pay_a[ia_c[in_a]] if len(key_a) else np.empty(0, dtype=np.int64)
            pos_b = pay_b[ib_c[in_b]] if len(key_b) else np.empty(0, dtype=np.int64)
            out_segs, out_coords = np.divmod(keys, c_span)
            ka, da, oa = _payload_columns(ref_a, pos_a, in_a)
            kb, db, ob = _payload_columns(ref_b, pos_b, in_b)

        # Interleave payload groups with the shared control skeleton: the
        # j-th control token closes segment j, so its sort key is the
        # per-segment sentinel (greater than any coordinate in the segment).
        n_pay = len(out_coords)
        n_ctrl = len(ctrl_a)
        ctrl_keys = np.arange(n_ctrl, dtype=np.int64) * c_span + (c_span - 1)
        pay_keys = out_segs * c_span + out_coords
        order = np.argsort(
            np.concatenate([pay_keys, ctrl_keys]), kind="stable"
        )

        ctrl_kinds = crd_a.kinds[ctrl_a]
        ctrl_data = crd_a.data[ctrl_a]
        crd_kinds = np.concatenate(
            [np.zeros(n_pay, dtype=np.int8), ctrl_kinds]
        )[order]
        crd_data = np.concatenate(
            [out_coords.astype(np.float64), ctrl_data]
        )[order]

        def side(kinds, data, objs):
            out_kinds = np.concatenate([kinds, ctrl_kinds])[order]
            out_data = np.concatenate([data, ctrl_data])[order]
            out_objs = None
            if objs is not None:
                out_objs = np.concatenate(
                    [objs, np.full(n_ctrl, None, dtype=object)]
                )[order]
            return TokenStream(out_kinds, out_data, out_objs)

        out_crd = TokenStream(crd_kinds, crd_data)
        out_ra = side(ka, da, oa)
        out_rb = side(kb, db, ob)
        stats.tokens_out += len(out_crd) + len(out_ra) + len(out_rb)
        return {"crd": out_crd, "ref_a": out_ra, "ref_b": out_rb}


class Intersect(_Joiner):
    """Two-sided coordinate intersection.

    Ports: ``crd_a``/``ref_a`` and ``crd_b``/``ref_b`` in; ``crd``, ``ref_a``,
    ``ref_b`` out.  The ``ref`` streams are positionally aligned with their
    ``crd`` streams and may carry references *or* values (fused intermediate
    value streams are filtered the same way).
    """

    kind = "intersect"
    keep_all = False


class Union(_Joiner):
    """Two-sided coordinate union with EMPTY padding for absent sides."""

    kind = "union"
    keep_all = True
