"""Input-iteration primitives: root sources, level scanners, and locate.

A *level scanner* traverses one level of a tensor's fibertree.  It receives a
stream of references to fibers in its level and emits, for each reference,
the fiber's coordinates (``crd`` port) and child references (``ref`` port).
Stop tokens from the input are re-emitted one level deeper; every opened
fiber is closed by a stop before the stream terminates, matching the SAM
protocol (Section 2 of the paper).
"""

from __future__ import annotations

from typing import Dict

from ..token import (
    CRD,
    DONE,
    DONE_TOKEN,
    EMPTY,
    EMPTY_TOKEN,
    REF,
    STOP,
    Stream,
    StreamProtocolError,
)
from .base import ExecutionContext, NodeStats, Primitive


class Root(Primitive):
    """Emits the root reference stream ``ref(0) D`` that starts iteration."""

    kind = "root"
    in_ports = ()
    out_ports = ("ref",)

    def process(self, ins, ctx, stats) -> Dict[str, Stream]:
        out: Stream = [(REF, 0), DONE_TOKEN]
        stats.tokens_out += len(out)
        return {"ref": out}


class LevelScanner(Primitive):
    """Scan one storage level of a named tensor.

    Parameters
    ----------
    tensor_name:
        Name bound to a :class:`~repro.ftree.tensor.SparseTensor` at run time.
    level:
        Storage level index this scanner traverses.
    dram:
        Whether the tensor structure resides off-chip; compressed levels then
        charge 4 bytes per pos/crd touch to DRAM.
    """

    kind = "scan"
    in_ports = ("ref",)
    out_ports = ("crd", "ref")

    def __init__(self, tensor_name: str, level: int, dram: bool = True) -> None:
        self.tensor_name = tensor_name
        self.level = level
        self.dram = dram

    def describe(self) -> str:
        return f"scan({self.tensor_name}.L{self.level})"

    def touches_dram(self) -> bool:
        return self.dram

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        tensor = ctx.tensor(self.tensor_name)
        level = tensor.levels[self.level]
        compressed = level.kind == "compressed"
        crd_out: Stream = []
        ref_out: Stream = []
        open_fiber = False
        access_bytes = 0
        stats.tokens_in += len(ins["ref"])
        for token in ins["ref"]:
            kind, payload = token
            if kind == REF:
                if open_fiber:
                    crd_out.append((STOP, 0))
                    ref_out.append((STOP, 0))
                coords, children = level.fiber(payload)
                for c, child in zip(coords, children):
                    crd_out.append((CRD, c))
                    ref_out.append((REF, child))
                if compressed and self.dram:
                    # pos pair + one crd entry per nonzero, 4 bytes each.
                    access_bytes += 8 + 4 * len(list(coords))
                open_fiber = True
            elif kind == EMPTY:
                if open_fiber:
                    crd_out.append((STOP, 0))
                    ref_out.append((STOP, 0))
                open_fiber = True
            elif kind == STOP:
                crd_out.append((STOP, payload + 1))
                ref_out.append((STOP, payload + 1))
                open_fiber = False
            elif kind == DONE:
                if open_fiber:
                    crd_out.append((STOP, 0))
                    ref_out.append((STOP, 0))
                crd_out.append(DONE_TOKEN)
                ref_out.append(DONE_TOKEN)
            else:
                raise StreamProtocolError(f"scanner got unexpected token kind {kind}")
        if compressed and self.dram:
            footprint = tensor.bytes_structure()
            if footprint <= ctx.scratchpad_bytes:
                stats.dram_reads += min(access_bytes, footprint)
            else:
                stats.dram_reads += access_bytes
        stats.tokens_out += len(crd_out) + len(ref_out)
        return {"crd": crd_out, "ref": ref_out}


class Locate(Primitive):
    """Map coordinate tokens to references within one tensor level.

    Used by recompute-style fusion: a consumer's coordinate stream drives a
    producer's outer level.  For dense levels a coordinate *is* the position
    offset; for compressed levels a binary search over each parent fiber is
    modeled (and charged as structure reads).

    The input coordinates address fibers under parent position ``parent``
    (default 0, i.e. the level is the outermost one).
    """

    kind = "locate"
    in_ports = ("crd",)
    out_ports = ("ref",)

    def __init__(self, tensor_name: str, level: int, dram: bool = True) -> None:
        self.tensor_name = tensor_name
        self.level = level
        self.dram = dram

    def describe(self) -> str:
        return f"locate({self.tensor_name}.L{self.level})"

    def touches_dram(self) -> bool:
        return self.dram

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        tensor = ctx.tensor(self.tensor_name)
        level = tensor.levels[self.level]
        out: Stream = []
        stats.tokens_in += len(ins["crd"])
        for token in ins["crd"]:
            kind, payload = token
            if kind == CRD:
                if level.kind == "dense":
                    out.append((REF, payload))
                else:
                    coords, children = level.fiber(0)
                    found = False
                    for c, child in zip(coords, children):
                        if c == payload:
                            out.append((REF, child))
                            found = True
                            break
                    if not found:
                        out.append(EMPTY_TOKEN)
                    if self.dram:
                        stats.dram_reads += 8
            elif kind in (STOP, DONE, EMPTY):
                out.append(token)
            else:
                raise StreamProtocolError(f"locate got unexpected token kind {kind}")
        stats.tokens_out += len(out)
        return {"ref": out}


class CrdSource(Primitive):
    """Replay a precomputed stream (used to stitch kernels and in tests)."""

    kind = "source"
    in_ports = ()
    out_ports = ("out",)

    def __init__(self, stream: Stream, label: str = "stream") -> None:
        self.stream = list(stream)
        self.label = label

    def describe(self) -> str:
        return f"source({self.label})"

    def process(self, ins, ctx, stats) -> Dict[str, Stream]:
        stats.tokens_out += len(self.stream)
        return {"out": list(self.stream)}
