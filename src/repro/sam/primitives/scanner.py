"""Input-iteration primitives: root sources, level scanners, and locate.

A *level scanner* traverses one level of a tensor's fibertree.  It receives a
stream of references to fibers in its level and emits, for each reference,
the fiber's coordinates (``crd`` port) and child references (``ref`` port).
Stop tokens from the input are re-emitted one level deeper; every opened
fiber is closed by a stop before the stream terminates, matching the SAM
protocol (Section 2 of the paper).
"""

from __future__ import annotations

from array import array
from typing import Dict

import numpy as np

from ..token import (
    CRD,
    DONE,
    DONE_TOKEN,
    EMPTY,
    EMPTY_TOKEN,
    REF,
    STOP,
    VAL,
    Stream,
    StreamProtocolError,
    TokenStream,
)
from .base import ExecutionContext, NodeStats, Primitive

#: Single-byte kind codes for building columnar kind arrays with bytearray
#: (CRD=0 .. EMPTY=5 fit in a byte; bytearray extend/append is C-speed).
_B_CRD = bytes((CRD,))
_B_REF = bytes((REF,))
_B_STOP = bytes((STOP,))
_B_DONE = bytes((DONE,))


def _wrap_columns(kinds: bytearray, data: array) -> TokenStream:
    """Zero-ish-copy wrap of builder columns into a TokenStream."""
    return TokenStream(
        np.frombuffer(bytes(kinds), dtype=np.int8),
        np.frombuffer(data, dtype=np.float64) if len(data) else np.empty(0),
    )


class Root(Primitive):
    """Emits the root reference stream ``ref(0) D`` that starts iteration."""

    kind = "root"
    in_ports = ()
    out_ports = ("ref",)

    def process(self, ins, ctx, stats) -> Dict[str, Stream]:
        out: Stream = [(REF, 0), DONE_TOKEN]
        stats.tokens_out += len(out)
        return {"ref": out}

    #: Constant columnar root stream (streams are immutable in flight).
    _COLUMNAR = TokenStream(
        np.array([REF, DONE], dtype=np.int8), np.zeros(2, dtype=np.float64)
    )

    def process_columnar(self, ins, ctx, stats) -> Dict[str, TokenStream]:
        stats.tokens_out += 2
        return {"ref": Root._COLUMNAR}


class LevelScanner(Primitive):
    """Scan one storage level of a named tensor.

    Parameters
    ----------
    tensor_name:
        Name bound to a :class:`~repro.ftree.tensor.SparseTensor` at run time.
    level:
        Storage level index this scanner traverses.
    dram:
        Whether the tensor structure resides off-chip; compressed levels then
        charge 4 bytes per pos/crd touch to DRAM.
    """

    kind = "scan"
    in_ports = ("ref",)
    out_ports = ("crd", "ref")

    def __init__(self, tensor_name: str, level: int, dram: bool = True) -> None:
        self.tensor_name = tensor_name
        self.level = level
        self.dram = dram

    def describe(self) -> str:
        return f"scan({self.tensor_name}.L{self.level})"

    def touches_dram(self) -> bool:
        return self.dram

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        tensor = ctx.tensor(self.tensor_name)
        level = tensor.levels[self.level]
        compressed = level.kind == "compressed"
        crd_out: Stream = []
        ref_out: Stream = []
        open_fiber = False
        access_bytes = 0
        stats.tokens_in += len(ins["ref"])
        for token in ins["ref"]:
            kind, payload = token
            if kind == REF:
                if open_fiber:
                    crd_out.append((STOP, 0))
                    ref_out.append((STOP, 0))
                coords, children = level.fiber(payload)
                for c, child in zip(coords, children):
                    crd_out.append((CRD, c))
                    ref_out.append((REF, child))
                if compressed and self.dram:
                    # pos pair + one crd entry per nonzero, 4 bytes each.
                    access_bytes += 8 + 4 * len(list(coords))
                open_fiber = True
            elif kind == EMPTY:
                if open_fiber:
                    crd_out.append((STOP, 0))
                    ref_out.append((STOP, 0))
                open_fiber = True
            elif kind == STOP:
                crd_out.append((STOP, payload + 1))
                ref_out.append((STOP, payload + 1))
                open_fiber = False
            elif kind == DONE:
                if open_fiber:
                    crd_out.append((STOP, 0))
                    ref_out.append((STOP, 0))
                crd_out.append(DONE_TOKEN)
                ref_out.append(DONE_TOKEN)
            else:
                raise StreamProtocolError(f"scanner got unexpected token kind {kind}")
        if compressed and self.dram:
            footprint = tensor.bytes_structure()
            if footprint <= ctx.scratchpad_bytes:
                stats.dram_reads += min(access_bytes, footprint)
            else:
                stats.dram_reads += access_bytes
        stats.tokens_out += len(crd_out) + len(ref_out)
        return {"crd": crd_out, "ref": ref_out}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        """Columnar scan: per-input-token control flow, per-fiber bulk emit.

        The Python loop runs once per *input* token (references and stops);
        each fiber's coordinates and child references are emitted with
        C-speed ``extend`` of the level's slice/range, so the cost no longer
        scales with the (much larger) output token count.
        """
        ref_in = ins["ref"]
        tensor = ctx.tensor(self.tensor_name)
        level = tensor.levels[self.level]
        compressed = level.kind == "compressed"
        n = len(ref_in)
        stats.tokens_in += n
        if ref_in.has_objs():
            # Opaque reference handles: bridge through the legacy kernel.
            return super().process_columnar(ins, ctx, stats)

        kinds_in = ref_in.kinds.tolist()
        data_in = ref_in.data
        # Shared control skeleton; separate payload kinds per output stream.
        crd_kinds = bytearray()
        ref_kinds = bytearray()
        crd_data = array("d")
        ref_data = array("d")
        open_fiber = False
        nnz = 0
        n_fibers = 0
        for i, kind in enumerate(kinds_in):
            if kind == REF:
                if open_fiber:
                    crd_kinds += _B_STOP
                    ref_kinds += _B_STOP
                    crd_data.append(0.0)
                    ref_data.append(0.0)
                coords, children = level.fiber(int(data_in[i]))
                m = len(coords)
                crd_kinds += _B_CRD * m
                ref_kinds += _B_REF * m
                crd_data.extend(coords)
                ref_data.extend(children)
                nnz += m
                n_fibers += 1
                open_fiber = True
            elif kind == EMPTY:
                if open_fiber:
                    crd_kinds += _B_STOP
                    ref_kinds += _B_STOP
                    crd_data.append(0.0)
                    ref_data.append(0.0)
                open_fiber = True
            elif kind == STOP:
                crd_kinds += _B_STOP
                ref_kinds += _B_STOP
                lvl = data_in[i] + 1.0
                crd_data.append(lvl)
                ref_data.append(lvl)
                open_fiber = False
            elif kind == DONE:
                if open_fiber:
                    crd_kinds += _B_STOP
                    ref_kinds += _B_STOP
                    crd_data.append(0.0)
                    ref_data.append(0.0)
                crd_kinds += _B_DONE
                ref_kinds += _B_DONE
                crd_data.append(0.0)
                ref_data.append(0.0)
            else:
                raise StreamProtocolError(f"scanner got unexpected token kind {kind}")
        if compressed and self.dram:
            access_bytes = 8 * n_fibers + 4 * nnz
            footprint = tensor.bytes_structure()
            if footprint <= ctx.scratchpad_bytes:
                stats.dram_reads += min(access_bytes, footprint)
            else:
                stats.dram_reads += access_bytes
        stats.tokens_out += len(crd_kinds) + len(ref_kinds)
        return {
            "crd": _wrap_columns(crd_kinds, crd_data),
            "ref": _wrap_columns(ref_kinds, ref_data),
        }


class Locate(Primitive):
    """Map coordinate tokens to references within one tensor level.

    Used by recompute-style fusion: a consumer's coordinate stream drives a
    producer's outer level.  For dense levels a coordinate *is* the position
    offset; for compressed levels a binary search over each parent fiber is
    modeled (and charged as structure reads).

    The input coordinates address fibers under parent position ``parent``
    (default 0, i.e. the level is the outermost one).
    """

    kind = "locate"
    in_ports = ("crd",)
    out_ports = ("ref",)

    def __init__(self, tensor_name: str, level: int, dram: bool = True) -> None:
        self.tensor_name = tensor_name
        self.level = level
        self.dram = dram

    def describe(self) -> str:
        return f"locate({self.tensor_name}.L{self.level})"

    def touches_dram(self) -> bool:
        return self.dram

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        tensor = ctx.tensor(self.tensor_name)
        level = tensor.levels[self.level]
        out: Stream = []
        stats.tokens_in += len(ins["crd"])
        for token in ins["crd"]:
            kind, payload = token
            if kind == CRD:
                if level.kind == "dense":
                    out.append((REF, payload))
                else:
                    coords, children = level.fiber(0)
                    found = False
                    for c, child in zip(coords, children):
                        if c == payload:
                            out.append((REF, child))
                            found = True
                            break
                    if not found:
                        out.append(EMPTY_TOKEN)
                    if self.dram:
                        stats.dram_reads += 8
            elif kind in (STOP, DONE, EMPTY):
                out.append(token)
            else:
                raise StreamProtocolError(f"locate got unexpected token kind {kind}")
        stats.tokens_out += len(out)
        return {"ref": out}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        crd_in = ins["crd"]
        tensor = ctx.tensor(self.tensor_name)
        level = tensor.levels[self.level]
        kinds = crd_in.kinds
        n = len(kinds)
        stats.tokens_in += n
        bad = np.nonzero((kinds == REF) | (kinds == VAL))[0]
        if bad.size:
            raise StreamProtocolError(
                f"locate got unexpected token kind {int(kinds[bad[0]])}"
            )
        is_crd = kinds == CRD
        if level.kind == "dense":
            # A coordinate *is* the position offset: retag CRD -> REF.
            out_kinds = np.where(is_crd, np.int8(REF), kinds)
            return self._finish(out_kinds, crd_in.data, stats)
        coords, children = level.fiber(0)
        carr = np.asarray(coords, dtype=np.int64)
        queries = crd_in.data[is_crd].astype(np.int64)
        idx = np.searchsorted(carr, queries)
        clipped = np.minimum(idx, max(len(carr) - 1, 0))
        found = (
            (carr[clipped] == queries) & (idx < len(carr))
            if len(carr)
            else np.zeros(len(queries), dtype=bool)
        )
        child_base = children[0] if len(carr) else 0
        out_kinds = kinds.copy()
        out_data = crd_in.data.copy()
        crd_pos = np.nonzero(is_crd)[0]
        out_kinds[crd_pos] = np.where(found, np.int8(REF), np.int8(EMPTY))
        out_data[crd_pos] = np.where(found, (child_base + clipped).astype(np.float64), 0.0)
        if self.dram:
            stats.dram_reads += 8 * len(queries)
        return self._finish(out_kinds, out_data, stats)

    def _finish(self, kinds: np.ndarray, data: np.ndarray, stats: NodeStats) -> Dict[str, TokenStream]:
        out = TokenStream(kinds, data)
        stats.tokens_out += len(out)
        return {"ref": out}


class CrdSource(Primitive):
    """Replay a precomputed stream (used to stitch kernels and in tests)."""

    kind = "source"
    in_ports = ()
    out_ports = ("out",)

    def __init__(self, stream: Stream, label: str = "stream") -> None:
        self.stream = list(stream)
        self.label = label

    def describe(self) -> str:
        return f"source({self.label})"

    def process(self, ins, ctx, stats) -> Dict[str, Stream]:
        stats.tokens_out += len(self.stream)
        return {"out": list(self.stream)}

    def process_columnar(self, ins, ctx, stats) -> Dict[str, TokenStream]:
        cached = getattr(self, "_columnar", None)
        if cached is None:
            cached = TokenStream.from_tokens(self.stream)
            self._columnar = cached
        stats.tokens_out += len(cached)
        return {"out": cached}
