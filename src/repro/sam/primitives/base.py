"""Primitive base class and execution context for SAM/SAMML nodes.

Each primitive is a pure function over whole token streams: given a dict of
input streams (one per input port) it produces a dict of output streams.  The
execution context supplies the tensor binding (name -> SparseTensor) and a
per-node statistics accumulator used by the simulator's cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..token import Stream, TokenStream


@dataclass
class NodeStats:
    """Per-node instrumentation collected during functional execution.

    ``tokens_in``/``tokens_out`` count every token moved through the node.
    ``ops`` counts arithmetic operations (FLOPs for ALU-class nodes).
    ``dram_reads``/``dram_writes`` count bytes exchanged with off-chip memory
    (zero for nodes operating purely on on-chip streams).
    """

    tokens_in: int = 0
    tokens_out: int = 0
    ops: int = 0
    dram_reads: int = 0
    dram_writes: int = 0

    def merge(self, other: "NodeStats") -> None:
        self.tokens_in += other.tokens_in
        self.tokens_out += other.tokens_out
        self.ops += other.ops
        self.dram_reads += other.dram_reads
        self.dram_writes += other.dram_writes


class ExecutionContext:
    """Carries tensor bindings and stats collection through execution."""

    def __init__(
        self,
        binding: Dict[str, Any] | None = None,
        scratchpad_bytes: int = 1 << 16,
        debug_streams: bool = False,
    ) -> None:
        self.binding: Dict[str, Any] = dict(binding or {})
        self.stats: Dict[str, NodeStats] = {}
        # Tensors produced by writer nodes during execution.
        self.results: Dict[str, Any] = {}
        # On-chip scratchpad capacity: tensors that fit are charged DRAM
        # traffic once (compulsory), not per re-access.
        self.scratchpad_bytes = scratchpad_bytes
        # When True, every produced stream is protocol-checked (check_stream)
        # and writers re-validate their inputs; costs a pass per stream, so
        # it is off on hot paths and turned on by tests / debugging sessions.
        self.debug_streams = debug_streams
        # Node id currently executing, for error attribution in primitives.
        self.current_node: str = "?"

    def tensor(self, name: str):
        try:
            return self.binding[name]
        except KeyError:
            raise KeyError(
                f"tensor {name!r} not bound (have {sorted(self.binding)})"
            ) from None

    def stats_for(self, node_id: str) -> NodeStats:
        if node_id not in self.stats:
            self.stats[node_id] = NodeStats()
        return self.stats[node_id]


class Primitive:
    """Base class for all SAM/SAMML dataflow primitives.

    Subclasses define ``kind`` (a short identifier used by the timing model),
    ``in_ports``/``out_ports`` (names of stream ports), and implement
    :meth:`process`.
    """

    kind: str = "prim"
    in_ports: Tuple[str, ...] = ()
    out_ports: Tuple[str, ...] = ("out",)
    # Timing class used by machine models; defaults to ``kind``.
    op_class: Optional[str] = None

    def process(self, ins: Dict[str, Stream], ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        """Consume input streams, return output streams, update ``stats``."""
        raise NotImplementedError

    def process_columnar(
        self,
        ins: Dict[str, TokenStream],
        ctx: ExecutionContext,
        stats: NodeStats,
    ) -> Dict[str, TokenStream]:
        """Columnar-path counterpart of :meth:`process`.

        Hot primitives override this with vectorized numpy kernels; the
        default bridges through the legacy tuple-list implementation so
        exotic primitives stay correct without a rewrite.  Either way the
        observable semantics — streams, stats, errors — match the legacy
        path token for token.
        """
        legacy_ins = {
            port: stream.to_tokens() if isinstance(stream, TokenStream) else stream
            for port, stream in ins.items()
        }
        outs = self.process(legacy_ins, ctx, stats)
        return {
            port: TokenStream.from_tokens(stream) for port, stream in outs.items()
        }

    def timing_class(self) -> str:
        return self.op_class or self.kind

    def describe(self) -> str:
        return self.kind

    def touches_dram(self) -> bool:
        """True when the node moves data to/from off-chip memory."""
        return False


def count_tokens(streams: Dict[str, Stream]) -> int:
    return sum(len(s) for s in streams.values())
