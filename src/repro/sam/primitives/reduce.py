"""Reduction primitives: scalar reducers and higher-order (vector) reducers.

The scalar :class:`Reduce` sums the values of each innermost fiber, removing
one nesting level.  The :class:`VectorReducer` is the SAMML abstraction that
enables *factored iteration* (Sections 3 and 6 of the paper): it reduces a
non-innermost index by keeping accumulators keyed by the inner output
coordinates, and at each reduction boundary emits coordinate streams plus a
value stream.  Those streams flow to the input iteration of subsequent
operations — the interleaving of iteration and computation that
distinguishes FuseFlow's lowering from prior global-iteration compilers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from ..token import (
    CRD,
    DONE,
    DONE_TOKEN,
    EMPTY,
    STOP,
    VAL,
    Stream,
    StreamProtocolError,
)
from .base import ExecutionContext, NodeStats, Primitive


class Reduce(Primitive):
    """Sum values within each innermost fiber (removes one stop level).

    One value is emitted per closed fiber — zero for empty fibers — keeping
    the output aligned with the surrounding coordinate streams; explicit
    zeros are elided later by the coordinate dropper / tensor writer.
    """

    kind = "reduce"
    in_ports = ("val",)
    out_ports = ("val",)

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        out: Stream = []
        acc: Any = None
        stats.tokens_in += len(ins["val"])
        for token in ins["val"]:
            kind = token[0]
            if kind == VAL:
                if acc is None:
                    acc = token[1]
                else:
                    acc = acc + token[1]
                    stats.ops += 1 if not isinstance(acc, np.ndarray) else int(acc.size)
            elif kind == EMPTY:
                if acc is None:
                    acc = 0.0
            elif kind == STOP:
                out.append((VAL, acc if acc is not None else 0.0))
                acc = None
                if token[1] > 0:
                    out.append((STOP, token[1] - 1))
            elif kind == DONE:
                if acc is not None:
                    out.append((VAL, acc))
                    acc = None
                out.append(DONE_TOKEN)
            else:
                raise StreamProtocolError(f"reduce got unexpected token kind {kind}")
        stats.tokens_out += len(out)
        return {"val": out}


class VectorReducer(Primitive):
    """Higher-order reduction over a non-innermost index variable.

    Reduces an index that has ``order`` output indices nested below it by
    keeping accumulators keyed by the tuple of inner coordinates (a vector
    for order 1, a tensor for order n).

    Inputs: ``crd0`` .. ``crd{order-1}`` coordinate streams — each broadcast
    (coordinate-held) so it aligns 1:1 with ``val`` — plus the ``val``
    stream, whose nesting is ``[...outer][red][inner0 .. inner{order-1}]``.
    Stop levels below ``order`` are fiber boundaries *within* one reduction
    group and are absorbed; a stop of level ``s >= order`` closes the
    reduction fiber: the accumulator flushes as a sorted nested fiber group.

    Outputs: ``crd0`` .. ``crd{order-1}`` at their natural nesting depths
    (``crd_d`` emits one coordinate per distinct length-``d+1`` key prefix)
    plus the reduced ``val`` stream aligned with ``crd{order-1}``.  At a
    flush triggered by input stop ``s``, stream ``crd_d`` closes with
    ``stop(d + s - order)`` and ``val`` with ``stop(s - 1)`` — the reduced
    level disappears from the nesting.
    """

    kind = "vreduce"

    def __init__(self, order: int = 1) -> None:
        if order < 1:
            raise ValueError("vector reducer order must be >= 1")
        self.order = order
        self.in_ports = tuple(f"crd{d}" for d in range(order)) + ("val",)
        self.out_ports = tuple(f"crd{d}" for d in range(order)) + ("val",)

    def describe(self) -> str:
        return f"vreduce(order={self.order})"

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        n = self.order
        val_in = ins["val"]
        crd_ins = [ins[f"crd{d}"] for d in range(n)]
        for d, stream in enumerate(crd_ins):
            if len(stream) != len(val_in):
                raise StreamProtocolError(
                    f"vreduce: crd{d}/val misaligned ({len(stream)} vs {len(val_in)})"
                )
        stats.tokens_in += len(val_in) * (n + 1)

        out_crds: List[Stream] = [[] for _ in range(n)]
        out_val: Stream = []
        acc: Dict[Tuple[int, ...], Any] = {}

        def emit_group() -> None:
            """Emit sorted accumulator contents as nested fibers (no trailing stop)."""
            keys = sorted(acc)
            prev: Tuple[int, ...] | None = None
            for key in keys:
                if prev is not None:
                    common = 0
                    while common < n and prev[common] == key[common]:
                        common += 1
                    # Stream d closes fibers when a level above it changed.
                    for d in range(n):
                        if common <= d - 1:
                            out_crds[d].append((STOP, d - 1 - common))
                    if common <= n - 2:
                        out_val.append((STOP, n - 2 - common))
                for d in range(n):
                    if prev is None or key[: d + 1] != prev[: d + 1]:
                        out_crds[d].append((CRD, key[d]))
                out_val.append((VAL, acc[key]))
                prev = key
            acc.clear()

        def close_group(input_stop_level: int) -> None:
            """Append the flush-closing stops for input stop ``s``."""
            extra = input_stop_level - n
            for d in range(n):
                out_crds[d].append((STOP, d + extra))
            out_val.append((STOP, input_stop_level - 1))

        for pos, tv in enumerate(val_in):
            kv = tv[0]
            if kv == VAL or kv == EMPTY:
                key: List[int] = []
                for d in range(n):
                    tc = crd_ins[d][pos]
                    if tc[0] != CRD:
                        raise StreamProtocolError(
                            f"vreduce: crd{d} token {tc} does not align with value"
                        )
                    key.append(tc[1])
                key_t = tuple(key)
                value = 0.0 if kv == EMPTY else tv[1]
                if key_t in acc:
                    acc[key_t] = acc[key_t] + value
                    stats.ops += int(value.size) if isinstance(value, np.ndarray) else 1
                else:
                    acc[key_t] = value
            elif kv == STOP:
                level = tv[1]
                for d in range(n):
                    tc = crd_ins[d][pos]
                    if tc[0] != STOP or tc[1] != level:
                        raise StreamProtocolError("vreduce: stop tokens disagree")
                if level >= n:
                    emit_group()
                    close_group(level)
                # Stops below the reduction boundary are absorbed.
            elif kv == DONE:
                if acc:
                    emit_group()
                    close_group(n)
                for d in range(n):
                    out_crds[d].append(DONE_TOKEN)
                out_val.append(DONE_TOKEN)
            else:
                raise StreamProtocolError(f"vreduce got unexpected token kind {kv}")
        stats.tokens_out += sum(len(s) for s in out_crds) + len(out_val)
        outs: Dict[str, Stream] = {f"crd{d}": out_crds[d] for d in range(n)}
        outs["val"] = out_val
        return outs


class CrdDrop(Primitive):
    """Drop zero-valued entries from aligned (crd, val) innermost streams.

    Implements SAM's coordinate dropper at the value granularity: explicit
    zeros produced by reductions over empty intersections are removed before
    tensor construction.
    """

    kind = "crddrop"
    in_ports = ("crd", "val")
    out_ports = ("crd", "val")

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        crd_in, val_in = ins["crd"], ins["val"]
        if len(crd_in) != len(val_in):
            raise StreamProtocolError("crddrop: crd/val misaligned")
        stats.tokens_in += len(crd_in) + len(val_in)
        out_crd: Stream = []
        out_val: Stream = []
        for tc, tv in zip(crd_in, val_in):
            if tc[0] == CRD:
                value = tv[1]
                is_zero = (
                    float(np.abs(value).max()) == 0.0
                    if isinstance(value, np.ndarray)
                    else value == 0.0
                )
                if not is_zero:
                    out_crd.append(tc)
                    out_val.append(tv)
            else:
                out_crd.append(tc)
                out_val.append(tv)
        stats.tokens_out += len(out_crd) + len(out_val)
        return {"crd": out_crd, "val": out_val}


class AlignCheck(Primitive):
    """Assert two coordinate streams are identical, passing the first through.

    Inserted where the lowering adopts one intermediate's iteration for
    several structurally aligned operands (e.g., elementwise adds of two
    intermediates produced over the same dense row space).  A mismatch means
    the schedule needed a materialization — failing loudly here turns a
    silent wrong answer into a diagnosable error.
    """

    kind = "aligncheck"
    in_ports = ("a", "b")
    out_ports = ("out",)

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        a, b = ins["a"], ins["b"]
        stats.tokens_in += len(a) + len(b)
        if a != b:
            raise StreamProtocolError(
                "aligned-adopt streams differ; the fusion schedule requires a "
                "materialization boundary between these statements"
            )
        stats.tokens_out += len(a)
        return {"out": list(a)}
