"""Reduction primitives: scalar reducers and higher-order (vector) reducers.

The scalar :class:`Reduce` sums the values of each innermost fiber, removing
one nesting level.  The :class:`VectorReducer` is the SAMML abstraction that
enables *factored iteration* (Sections 3 and 6 of the paper): it reduces a
non-innermost index by keeping accumulators keyed by the inner output
coordinates, and at each reduction boundary emits coordinate streams plus a
value stream.  Those streams flow to the input iteration of subsequent
operations — the interleaving of iteration and computation that
distinguishes FuseFlow's lowering from prior global-iteration compilers.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..token import (
    CRD,
    DONE,
    DONE_TOKEN,
    EMPTY,
    REF,
    STOP,
    VAL,
    Stream,
    StreamProtocolError,
    TokenStream,
    streams_equal,
)
from .base import ExecutionContext, NodeStats, Primitive


def _segment_sums(
    values: np.ndarray, seg_of_value: np.ndarray, n_segments: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Per-segment left-to-right sums and element counts.

    The legacy kernels accumulate strictly sequentially; numpy's
    ``reduceat``/``sum`` use pairwise summation, which reassociates and can
    differ in the last bit.  To stay bit-identical this adds in *rounds* —
    round ``r`` adds the ``r``-th element of every still-unfinished segment —
    which is sequential per segment but vectorized across segments.
    Segments with no elements sum to 0.0.
    """
    counts = np.bincount(seg_of_value, minlength=n_segments)
    sums = np.zeros(n_segments, dtype=np.float64)
    if not len(values):
        return sums, counts
    if n_segments < 4:
        # Few segments: a per-segment Python walk beats round dispatch.
        vl = values.tolist()
        pos = 0
        for s, c in enumerate(counts.tolist()):
            if c:
                acc = vl[pos]
                for j in range(pos + 1, pos + c):
                    acc = acc + vl[j]
                sums[s] = acc
                pos += c
        return sums, counts
    starts = np.concatenate([[0], np.cumsum(counts)[:-1]])
    nonempty = counts > 0
    sums[nonempty] = values[starts[nonempty]]
    for r in range(1, int(counts.max())):
        live = counts > r
        sums[live] = sums[live] + values[starts[live] + r]
    return sums, counts


class Reduce(Primitive):
    """Sum values within each innermost fiber (removes one stop level).

    One value is emitted per closed fiber — zero for empty fibers — keeping
    the output aligned with the surrounding coordinate streams; explicit
    zeros are elided later by the coordinate dropper / tensor writer.
    """

    kind = "reduce"
    in_ports = ("val",)
    out_ports = ("val",)

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        out: Stream = []
        acc: Any = None
        stats.tokens_in += len(ins["val"])
        for token in ins["val"]:
            kind = token[0]
            if kind == VAL:
                if acc is None:
                    acc = token[1]
                else:
                    acc = acc + token[1]
                    stats.ops += 1 if not isinstance(acc, np.ndarray) else int(acc.size)
            elif kind == EMPTY:
                if acc is None:
                    acc = 0.0
            elif kind == STOP:
                out.append((VAL, acc if acc is not None else 0.0))
                acc = None
                if token[1] > 0:
                    out.append((STOP, token[1] - 1))
            elif kind == DONE:
                if acc is not None:
                    out.append((VAL, acc))
                    acc = None
                out.append(DONE_TOKEN)
            else:
                raise StreamProtocolError(f"reduce got unexpected token kind {kind}")
        stats.tokens_out += len(out)
        return {"val": out}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        ts = ins["val"]
        if ts.has_objs():
            # Blocked reductions are rare; bridge through the legacy kernel.
            return super().process_columnar(ins, ctx, stats)
        n = len(ts)
        stats.tokens_in += n
        kinds = ts.kinds
        bad = np.nonzero((kinds == CRD) | (kinds == REF))[0]
        if bad.size:
            raise StreamProtocolError(
                f"reduce got unexpected token kind {int(kinds[bad[0]])}"
            )
        stop_pos = np.nonzero(kinds == STOP)[0]
        stop_levels = ts.data[stop_pos].astype(np.int64)
        n_stops = len(stop_pos)

        val_pos = np.nonzero(kinds == VAL)[0]
        empty_pos = np.nonzero(kinds == EMPTY)[0]
        # Segment of a position = number of stops strictly before it.
        seg_of_val = np.searchsorted(stop_pos, val_pos)
        seg_of_empty = np.searchsorted(stop_pos, empty_pos)
        n_segments = n_stops + 1  # + trailing segment before done
        sums, val_counts = _segment_sums(ts.data[val_pos], seg_of_val, n_segments)
        empty_counts = np.bincount(seg_of_empty, minlength=n_segments)

        # FLOPs: one add per VAL accumulated onto a live accumulator.  The
        # accumulator is live from the second VAL on — or from the first VAL
        # when an EMPTY already initialized it to zero.
        has_vals = val_counts > 0
        first_val = np.full(n_segments, n, dtype=np.int64)
        first_val[seg_of_val[::-1]] = val_pos[::-1]
        first_empty = np.full(n_segments, n, dtype=np.int64)
        first_empty[seg_of_empty[::-1]] = empty_pos[::-1]
        early_empty = has_vals & (first_empty < first_val)
        stats.ops += int(
            np.sum(val_counts[has_vals] - 1) + np.count_nonzero(early_empty)
        )

        # Output layout: one VAL per stop (+ a shallower stop for levels
        # > 0), a trailing VAL when the last segment saw any payload, done.
        trailing = bool(has_vals[-1] or empty_counts[-1] > 0)
        deep = stop_levels > 0
        sizes = 1 + deep.astype(np.int64)
        offsets = np.concatenate([[0], np.cumsum(sizes)])
        total = int(offsets[-1]) + (1 if trailing else 0) + 1
        out_kinds = np.full(total, VAL, dtype=np.int8)
        out_data = np.zeros(total, dtype=np.float64)
        val_slots = offsets[:-1]
        out_data[val_slots] = sums[:n_stops]
        deep_slots = val_slots[deep] + 1
        out_kinds[deep_slots] = STOP
        out_data[deep_slots] = (stop_levels[deep] - 1).astype(np.float64)
        if trailing:
            out_data[total - 2] = sums[n_stops]
        out_kinds[total - 1] = DONE
        out_data[total - 1] = 0.0
        out = TokenStream(out_kinds, out_data)
        stats.tokens_out += total
        return {"val": out}


class VectorReducer(Primitive):
    """Higher-order reduction over a non-innermost index variable.

    Reduces an index that has ``order`` output indices nested below it by
    keeping accumulators keyed by the tuple of inner coordinates (a vector
    for order 1, a tensor for order n).

    Inputs: ``crd0`` .. ``crd{order-1}`` coordinate streams — each broadcast
    (coordinate-held) so it aligns 1:1 with ``val`` — plus the ``val``
    stream, whose nesting is ``[...outer][red][inner0 .. inner{order-1}]``.
    Stop levels below ``order`` are fiber boundaries *within* one reduction
    group and are absorbed; a stop of level ``s >= order`` closes the
    reduction fiber: the accumulator flushes as a sorted nested fiber group.

    Outputs: ``crd0`` .. ``crd{order-1}`` at their natural nesting depths
    (``crd_d`` emits one coordinate per distinct length-``d+1`` key prefix)
    plus the reduced ``val`` stream aligned with ``crd{order-1}``.  At a
    flush triggered by input stop ``s``, stream ``crd_d`` closes with
    ``stop(d + s - order)`` and ``val`` with ``stop(s - 1)`` — the reduced
    level disappears from the nesting.
    """

    kind = "vreduce"

    def __init__(self, order: int = 1) -> None:
        if order < 1:
            raise ValueError("vector reducer order must be >= 1")
        self.order = order
        self.in_ports = tuple(f"crd{d}" for d in range(order)) + ("val",)
        self.out_ports = tuple(f"crd{d}" for d in range(order)) + ("val",)

    def describe(self) -> str:
        return f"vreduce(order={self.order})"

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        n = self.order
        val_in = ins["val"]
        crd_ins = [ins[f"crd{d}"] for d in range(n)]
        for d, stream in enumerate(crd_ins):
            if len(stream) != len(val_in):
                raise StreamProtocolError(
                    f"vreduce: crd{d}/val misaligned ({len(stream)} vs {len(val_in)})"
                )
        stats.tokens_in += len(val_in) * (n + 1)

        out_crds: List[Stream] = [[] for _ in range(n)]
        out_val: Stream = []
        acc: Dict[Tuple[int, ...], Any] = {}

        def emit_group() -> None:
            """Emit sorted accumulator contents as nested fibers (no trailing stop)."""
            keys = sorted(acc)
            prev: Tuple[int, ...] | None = None
            for key in keys:
                if prev is not None:
                    common = 0
                    while common < n and prev[common] == key[common]:
                        common += 1
                    # Stream d closes fibers when a level above it changed.
                    for d in range(n):
                        if common <= d - 1:
                            out_crds[d].append((STOP, d - 1 - common))
                    if common <= n - 2:
                        out_val.append((STOP, n - 2 - common))
                for d in range(n):
                    if prev is None or key[: d + 1] != prev[: d + 1]:
                        out_crds[d].append((CRD, key[d]))
                out_val.append((VAL, acc[key]))
                prev = key
            acc.clear()

        def close_group(input_stop_level: int) -> None:
            """Append the flush-closing stops for input stop ``s``."""
            extra = input_stop_level - n
            for d in range(n):
                out_crds[d].append((STOP, d + extra))
            out_val.append((STOP, input_stop_level - 1))

        for pos, tv in enumerate(val_in):
            kv = tv[0]
            if kv == VAL or kv == EMPTY:
                key: List[int] = []
                for d in range(n):
                    tc = crd_ins[d][pos]
                    if tc[0] != CRD:
                        raise StreamProtocolError(
                            f"vreduce: crd{d} token {tc} does not align with value"
                        )
                    key.append(tc[1])
                key_t = tuple(key)
                value = 0.0 if kv == EMPTY else tv[1]
                if key_t in acc:
                    acc[key_t] = acc[key_t] + value
                    stats.ops += int(value.size) if isinstance(value, np.ndarray) else 1
                else:
                    acc[key_t] = value
            elif kv == STOP:
                level = tv[1]
                for d in range(n):
                    tc = crd_ins[d][pos]
                    if tc[0] != STOP or tc[1] != level:
                        raise StreamProtocolError("vreduce: stop tokens disagree")
                if level >= n:
                    emit_group()
                    close_group(level)
                # Stops below the reduction boundary are absorbed.
            elif kv == DONE:
                if acc:
                    emit_group()
                    close_group(n)
                for d in range(n):
                    out_crds[d].append(DONE_TOKEN)
                out_val.append(DONE_TOKEN)
            else:
                raise StreamProtocolError(f"vreduce got unexpected token kind {kv}")
        stats.tokens_out += sum(len(s) for s in out_crds) + len(out_val)
        outs: Dict[str, Stream] = {f"crd{d}": out_crds[d] for d in range(n)}
        outs["val"] = out_val
        return outs

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        n_ord = self.order
        val = ins["val"]
        crds = [ins[f"crd{d}"] for d in range(n_ord)]
        for d, s in enumerate(crds):
            if len(s) != len(val):
                raise StreamProtocolError(
                    f"vreduce: crd{d}/val misaligned ({len(s)} vs {len(val)})"
                )
        kinds = val.kinds
        n = len(val)
        is_empty = kinds == EMPTY
        if val.has_objs() and is_empty.any():
            # Mixed block/zero accumulators: bridge through the legacy path.
            return super().process_columnar(ins, ctx, stats)
        stats.tokens_in += n * (n_ord + 1)
        bad = np.nonzero((kinds == CRD) | (kinds == REF))[0]
        if bad.size:
            raise StreamProtocolError(
                f"vreduce got unexpected token kind {int(kinds[bad[0]])}"
            )
        pay_pos = np.nonzero((kinds == VAL) | is_empty)[0]
        stop_pos = np.nonzero(kinds == STOP)[0]
        stop_levels = val.data[stop_pos].astype(np.int64)
        for d, s in enumerate(crds):
            ck = s.kinds
            badp = pay_pos[ck[pay_pos] != CRD]
            if badp.size:
                i = int(badp[0])
                raise StreamProtocolError(
                    f"vreduce: crd{d} token {s.token_at(i)} does not align with value"
                )
            bads = (ck[stop_pos] != STOP) | (s.data[stop_pos] != val.data[stop_pos])
            if bads.any():
                raise StreamProtocolError("vreduce: stop tokens disagree")

        boundary = stop_levels >= n_ord
        flush_pos = stop_pos[boundary]
        flush_levels = stop_levels[boundary]
        n_flush = len(flush_pos)
        group = np.searchsorted(flush_pos, pay_pos)

        key_cols = [c.data[pay_pos].astype(np.int64) for c in crds]
        if len(pay_pos):
            sort_idx = np.lexsort(tuple(reversed(key_cols)) + (group,))
            g_sorted = group[sort_idx]
            k_sorted = [k[sort_idx] for k in key_cols]
            change = np.ones(len(pay_pos), dtype=bool)
            change[1:] = g_sorted[1:] != g_sorted[:-1]
            for k in k_sorted:
                change[1:] |= k[1:] != k[:-1]
            row_starts = np.nonzero(change)[0]
        else:
            sort_idx = np.empty(0, dtype=np.int64)
            g_sorted = np.empty(0, dtype=np.int64)
            k_sorted = [np.empty(0, dtype=np.int64) for _ in range(n_ord)]
            row_starts = np.empty(0, dtype=np.int64)
        n_rows = len(row_starts)
        row_group = g_sorted[row_starts]
        row_keys = [k[row_starts] for k in k_sorted]

        blocked = val.has_objs()
        if not blocked:
            values = val.data[pay_pos]
            v_sorted = values[sort_idx]
            row_of_elem = np.cumsum(change) - 1 if n_rows else np.empty(0, np.int64)
            row_sums, _ = _segment_sums(v_sorted, row_of_elem, n_rows)
            stats.ops += len(pay_pos) - n_rows
            sums_list: List[Any] = row_sums.tolist()
        else:
            blocks = [val.objs[i] for i in pay_pos.tolist()]
            shape = blocks[0].shape if blocks else ()
            if any(
                not isinstance(b, np.ndarray) or b.shape != shape for b in blocks
            ):
                return super().process_columnar(ins, ctx, stats)
            ends = np.append(row_starts[1:], len(pay_pos))
            sums_list = []
            sorted_blocks = [blocks[i] for i in sort_idx.tolist()]
            for s, e in zip(row_starts.tolist(), ends.tolist()):
                acc = sorted_blocks[s]
                for j in range(s + 1, e):
                    acc = acc + sorted_blocks[j]
                sums_list.append(acc)
            block_size = int(np.prod(shape)) if shape else 1
            stats.ops += (len(pay_pos) - n_rows) * block_size

        # ---- emission (python over output rows; inputs already reduced) ----
        crd_kinds = [bytearray() for _ in range(n_ord)]
        crd_data = [[] for _ in range(n_ord)]
        val_kinds = bytearray()
        val_data: List[float] = []
        val_objs: List[Any] = []

        row_group_l = row_group.tolist()
        row_key_l = list(zip(*(rk.tolist() for rk in row_keys))) if n_rows else []
        flush_levels_l = flush_levels.tolist()

        def emit_rows(r0: int, r1: int) -> None:
            prev = None
            for r in range(r0, r1):
                key = row_key_l[r]
                if prev is not None:
                    common = 0
                    while common < n_ord and prev[common] == key[common]:
                        common += 1
                    for d in range(n_ord):
                        if common <= d - 1:
                            crd_kinds[d].append(STOP)
                            crd_data[d].append(d - 1 - common)
                    if common <= n_ord - 2:
                        val_kinds.append(STOP)
                        val_data.append(n_ord - 2 - common)
                        if blocked:
                            val_objs.append(None)
                for d in range(n_ord):
                    if prev is None or key[: d + 1] != prev[: d + 1]:
                        crd_kinds[d].append(CRD)
                        crd_data[d].append(key[d])
                val_kinds.append(VAL)
                if blocked:
                    val_data.append(0.0)
                    val_objs.append(sums_list[r])
                else:
                    val_data.append(sums_list[r])
                prev = key

        def close_group(level: int) -> None:
            extra = level - n_ord
            for d in range(n_ord):
                crd_kinds[d].append(STOP)
                crd_data[d].append(d + extra)
            val_kinds.append(STOP)
            val_data.append(level - 1)
            if blocked:
                val_objs.append(None)

        row = 0
        for g in range(n_flush):
            r1 = row
            while r1 < n_rows and row_group_l[r1] == g:
                r1 += 1
            emit_rows(row, r1)
            close_group(flush_levels_l[g])
            row = r1
        has_done = n > 0 and kinds[-1] == DONE
        if has_done:
            if row < n_rows:
                emit_rows(row, n_rows)
                close_group(n_ord)
            for d in range(n_ord):
                crd_kinds[d].append(DONE)
                crd_data[d].append(0.0)
            val_kinds.append(DONE)
            val_data.append(0.0)
            if blocked:
                val_objs.append(None)

        outs: Dict[str, TokenStream] = {}
        for d in range(n_ord):
            outs[f"crd{d}"] = TokenStream(
                np.frombuffer(bytes(crd_kinds[d]), dtype=np.int8),
                np.asarray(crd_data[d], dtype=np.float64),
            )
        objs_col: Optional[np.ndarray] = None
        if blocked:
            objs_col = np.array([*val_objs, None], dtype=object)[:-1]
        outs["val"] = TokenStream(
            np.frombuffer(bytes(val_kinds), dtype=np.int8),
            np.asarray(val_data, dtype=np.float64),
            objs_col,
        )
        stats.tokens_out += sum(len(outs[f"crd{d}"]) for d in range(n_ord)) + len(
            outs["val"]
        )
        return outs


class CrdDrop(Primitive):
    """Drop zero-valued entries from aligned (crd, val) innermost streams.

    Implements SAM's coordinate dropper at the value granularity: explicit
    zeros produced by reductions over empty intersections are removed before
    tensor construction.
    """

    kind = "crddrop"
    in_ports = ("crd", "val")
    out_ports = ("crd", "val")

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        crd_in, val_in = ins["crd"], ins["val"]
        if len(crd_in) != len(val_in):
            raise StreamProtocolError("crddrop: crd/val misaligned")
        stats.tokens_in += len(crd_in) + len(val_in)
        out_crd: Stream = []
        out_val: Stream = []
        for tc, tv in zip(crd_in, val_in):
            if tc[0] == CRD:
                value = tv[1]
                is_zero = (
                    float(np.abs(value).max()) == 0.0
                    if isinstance(value, np.ndarray)
                    else value == 0.0
                )
                if not is_zero:
                    out_crd.append(tc)
                    out_val.append(tv)
            else:
                out_crd.append(tc)
                out_val.append(tv)
        stats.tokens_out += len(out_crd) + len(out_val)
        return {"crd": out_crd, "val": out_val}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        crd_in, val_in = ins["crd"], ins["val"]
        if len(crd_in) != len(val_in):
            raise StreamProtocolError("crddrop: crd/val misaligned")
        n = len(crd_in)
        stats.tokens_in += 2 * n
        is_crd = crd_in.kinds == CRD
        # EMPTY val tokens are never "zero": their legacy payload is None,
        # which the zero test keeps — only real zero *values* are dropped.
        not_empty = val_in.kinds != EMPTY
        if val_in.objs is None:
            zero = (val_in.data == 0.0) & not_empty
        else:
            zero = np.zeros(n, dtype=bool)
            for i in np.nonzero(is_crd & not_empty)[0].tolist():
                v = val_in.objs[i]
                if v is None:
                    zero[i] = val_in.data[i] == 0.0
                else:
                    zero[i] = float(np.abs(v).max()) == 0.0
        keep = np.nonzero(~(is_crd & zero))[0]
        out_crd = crd_in.gather(keep)
        out_val = val_in.gather(keep)
        stats.tokens_out += len(out_crd) + len(out_val)
        return {"crd": out_crd, "val": out_val}


class AlignCheck(Primitive):
    """Assert two coordinate streams are identical, passing the first through.

    Inserted where the lowering adopts one intermediate's iteration for
    several structurally aligned operands (e.g., elementwise adds of two
    intermediates produced over the same dense row space).  A mismatch means
    the schedule needed a materialization — failing loudly here turns a
    silent wrong answer into a diagnosable error.
    """

    kind = "aligncheck"
    in_ports = ("a", "b")
    out_ports = ("out",)

    def process(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, Stream]:
        a, b = ins["a"], ins["b"]
        stats.tokens_in += len(a) + len(b)
        if a != b:
            raise StreamProtocolError(
                "aligned-adopt streams differ; the fusion schedule requires a "
                "materialization boundary between these statements"
            )
        stats.tokens_out += len(a)
        return {"out": list(a)}

    def process_columnar(self, ins, ctx: ExecutionContext, stats: NodeStats) -> Dict[str, TokenStream]:
        a, b = ins["a"], ins["b"]
        stats.tokens_in += len(a) + len(b)
        if not streams_equal(a, b):
            raise StreamProtocolError(
                "aligned-adopt streams differ; the fusion schedule requires a "
                "materialization boundary between these statements"
            )
        stats.tokens_out += len(a)
        return {"out": a}
