"""Stream token protocol of the Sparse Abstract Machine (SAM).

SAM expresses tensors as *streams* of tokens flowing between dataflow
primitives.  A stream transmits one level of a tensor in fibertree form: a
sequence of payload tokens (coordinates, references, or values) punctuated by
*stop* tokens that close fibers and terminated by a single *done* token.

Token encoding
--------------
Tokens are plain tuples ``(kind, payload)`` for speed.  Kinds:

``CRD``
    A coordinate within the current fiber.
``REF``
    A reference (position) into the next tensor level, or into a value array.
``VAL``
    A numeric value (Python float/int or a numpy block for blocked formats).
``STOP``
    ``stop(n)`` closes ``n + 1`` nested fibers: ``S0`` ends the current fiber,
    ``S1`` ends the current fiber and its parent, and so on.
``DONE``
    Terminates the stream.  Every well-formed stream ends with exactly one.
``EMPTY``
    A padding token emitted by union joiners for the side that is missing a
    coordinate; value arrays translate it to an explicit zero.

The module also provides helpers to validate streams and to convert between
nested Python lists (fibertree-shaped data) and streams, which the test suite
uses heavily.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Sequence, Tuple

# Token kinds.  Kept as small ints because streams can be long.
CRD = 0
REF = 1
VAL = 2
STOP = 3
DONE = 4
EMPTY = 5

_KIND_NAMES = {CRD: "crd", REF: "ref", VAL: "val", STOP: "S", DONE: "D", EMPTY: "N"}

Token = Tuple[int, Any]
Stream = List[Token]

# Singletons for payload-free tokens.
DONE_TOKEN: Token = (DONE, None)
EMPTY_TOKEN: Token = (EMPTY, None)


def crd(c: int) -> Token:
    """Build a coordinate token."""
    return (CRD, c)


def ref(r: Any) -> Token:
    """Build a reference token (an integer position or an opaque handle)."""
    return (REF, r)


def val(v: Any) -> Token:
    """Build a value token (scalar or numpy block)."""
    return (VAL, v)


def stop(level: int) -> Token:
    """Build a stop token closing ``level + 1`` fibers."""
    if level < 0:
        raise ValueError(f"stop level must be non-negative, got {level}")
    return (STOP, level)


def done() -> Token:
    """Return the stream-terminating done token."""
    return DONE_TOKEN


def empty() -> Token:
    """Return the empty (padding) token."""
    return EMPTY_TOKEN


def is_control(token: Token) -> bool:
    """Return True for stop/done tokens, which carry no payload data."""
    return token[0] == STOP or token[0] == DONE


def is_payload(token: Token) -> bool:
    """Return True for crd/ref/val/empty tokens."""
    kind = token[0]
    return kind == CRD or kind == REF or kind == VAL or kind == EMPTY


def token_str(token: Token) -> str:
    """Render one token compactly, e.g. ``3``, ``S0``, ``D``."""
    kind, payload = token
    if kind == STOP:
        return f"S{payload}"
    if kind == DONE:
        return "D"
    if kind == EMPTY:
        return "N"
    return str(payload)


def pretty(stream: Iterable[Token]) -> str:
    """Render a stream as a single human-readable line."""
    return " ".join(token_str(tok) for tok in stream)


class StreamProtocolError(ValueError):
    """Raised when a stream violates the SAM token protocol."""


def check_stream(stream: Sequence[Token], *, allow_empty_tokens: bool = True) -> None:
    """Validate the SAM protocol invariants for ``stream``.

    Invariants checked:

    * the stream is non-empty and ends with exactly one done token;
    * no token follows the done token;
    * stop levels are non-negative integers;
    * if ``allow_empty_tokens`` is False, no EMPTY tokens appear.
    """
    if not stream:
        raise StreamProtocolError("stream is empty (missing done token)")
    if stream[-1][0] != DONE:
        raise StreamProtocolError(f"stream does not end with done: {pretty(stream[-5:])}")
    for i, token in enumerate(stream):
        kind = token[0]
        if kind == DONE and i != len(stream) - 1:
            raise StreamProtocolError(f"done token at position {i} is not last")
        if kind == STOP and (not isinstance(token[1], int) or token[1] < 0):
            raise StreamProtocolError(f"bad stop level {token[1]!r} at position {i}")
        if kind == EMPTY and not allow_empty_tokens:
            raise StreamProtocolError(f"unexpected empty token at position {i}")


def payload_tokens(stream: Iterable[Token]) -> List[Any]:
    """Return the payloads of all non-control tokens, in order."""
    return [tok[1] for tok in stream if is_payload(tok)]


def segments(stream: Sequence[Token], level: int = 0) -> Iterator[List[Token]]:
    """Split ``stream`` into segments closed by stops of level >= ``level``.

    Each yielded segment contains the payload and lower-level stop tokens
    belonging to one fiber at the requested nesting depth.  The done token is
    not included in any segment; a trailing segment before done is yielded
    even when it was not explicitly closed by a stop.
    """
    current: List[Token] = []
    saw_any = False
    for token in stream:
        kind = token[0]
        if kind == DONE:
            if current or saw_any is False:
                yield current
            return
        saw_any = True
        if kind == STOP and token[1] >= level:
            yield current
            current = []
        else:
            current.append(token)
    raise StreamProtocolError("stream not terminated with done token")


def nest_to_stream(nested: Any, kind: int = VAL) -> Stream:
    """Convert a nested list (fibertree-shaped data) into a token stream.

    Follows the full-closure convention: every fiber (including the
    outermost) is closed by a stop, with consecutive closures merged into a
    single deeper stop.  ``[[a, b], [c]]`` becomes ``a b S0 c S1 D``.
    """
    out: Stream = []

    def emit(node: Any) -> None:
        if not isinstance(node, list):
            out.append((kind, node))
            return
        for child in node:
            emit(child)
        if node and isinstance(node[-1], list):
            # The last child closed itself: deepen its stop (merged closure).
            out[-1] = (STOP, out[-1][1] + 1)
        else:
            # Leaf children or an empty fiber: emit this fiber's own stop.
            out.append((STOP, 0))

    emit(nested)
    out.append(DONE_TOKEN)
    return out


def stream_to_nest(stream: Sequence[Token], depth: int) -> Any:
    """Convert a token stream back into a nested list of ``depth`` levels.

    Inverse of :func:`nest_to_stream` for canonical streams that follow the
    full-closure convention (every fiber, including the outermost, is closed
    by a stop before done).  ``depth`` is the number of nesting levels: a
    flat stream like ``a b S0 D`` has depth 1 and yields ``[a, b]``.
    """
    check_stream(stream)
    # stack[0] is the root fiber; stack[depth-1] the innermost open fiber.
    stack: List[List[Any]] = [[] for _ in range(depth)]
    closed_root = False
    for token in stream:
        kind, payload = token
        if kind == DONE:
            break
        if kind == STOP:
            close = payload + 1
            if close > depth:
                raise StreamProtocolError(
                    f"stop level {payload} too deep for nest depth {depth}"
                )
            for lvl in range(close):
                idx = depth - 1 - lvl
                if idx >= 1:
                    stack[idx - 1].append(stack[idx])
                    stack[idx] = []
                else:
                    closed_root = True
        else:
            if closed_root:
                raise StreamProtocolError("payload token after root closure")
            stack[-1].append(payload)
    if not closed_root:
        # Tolerate streams missing the final closure (fold open fibers up).
        for lvl in range(depth - 1):
            idx = depth - 1 - lvl
            if stack[idx]:
                stack[idx - 1].append(stack[idx])
                stack[idx] = []
    return stack[0]


def strip_done(stream: Sequence[Token]) -> List[Token]:
    """Return ``stream`` without its trailing done token."""
    if stream and stream[-1][0] == DONE:
        return list(stream[:-1])
    return list(stream)


def append_done(stream: List[Token]) -> List[Token]:
    """Return ``stream`` with a done token appended (idempotent)."""
    if stream and stream[-1][0] == DONE:
        return stream
    return stream + [DONE_TOKEN]


def count_kind(stream: Iterable[Token], kind: int) -> int:
    """Count tokens of a given kind in a stream."""
    return sum(1 for tok in stream if tok[0] == kind)
