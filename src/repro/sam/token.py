"""Stream token protocol of the Sparse Abstract Machine (SAM).

SAM expresses tensors as *streams* of tokens flowing between dataflow
primitives.  A stream transmits one level of a tensor in fibertree form: a
sequence of payload tokens (coordinates, references, or values) punctuated by
*stop* tokens that close fibers and terminated by a single *done* token.

Token encoding
--------------
Tokens are plain tuples ``(kind, payload)`` for speed.  Kinds:

``CRD``
    A coordinate within the current fiber.
``REF``
    A reference (position) into the next tensor level, or into a value array.
``VAL``
    A numeric value (Python float/int or a numpy block for blocked formats).
``STOP``
    ``stop(n)`` closes ``n + 1`` nested fibers: ``S0`` ends the current fiber,
    ``S1`` ends the current fiber and its parent, and so on.
``DONE``
    Terminates the stream.  Every well-formed stream ends with exactly one.
``EMPTY``
    A padding token emitted by union joiners for the side that is missing a
    coordinate; value arrays translate it to an explicit zero.

The module also provides helpers to validate streams and to convert between
nested Python lists (fibertree-shaped data) and streams, which the test suite
uses heavily.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

# Token kinds.  Kept as small ints because streams can be long.
CRD = 0
REF = 1
VAL = 2
STOP = 3
DONE = 4
EMPTY = 5

_KIND_NAMES = {CRD: "crd", REF: "ref", VAL: "val", STOP: "S", DONE: "D", EMPTY: "N"}

Token = Tuple[int, Any]
Stream = List[Token]

# Singletons for payload-free tokens.
DONE_TOKEN: Token = (DONE, None)
EMPTY_TOKEN: Token = (EMPTY, None)


def crd(c: int) -> Token:
    """Build a coordinate token."""
    return (CRD, c)


def ref(r: Any) -> Token:
    """Build a reference token (an integer position or an opaque handle)."""
    return (REF, r)


def val(v: Any) -> Token:
    """Build a value token (scalar or numpy block)."""
    return (VAL, v)


def stop(level: int) -> Token:
    """Build a stop token closing ``level + 1`` fibers."""
    if level < 0:
        raise ValueError(f"stop level must be non-negative, got {level}")
    return (STOP, level)


def done() -> Token:
    """Return the stream-terminating done token."""
    return DONE_TOKEN


def empty() -> Token:
    """Return the empty (padding) token."""
    return EMPTY_TOKEN


def is_control(token: Token) -> bool:
    """Return True for stop/done tokens, which carry no payload data."""
    return token[0] == STOP or token[0] == DONE


def is_payload(token: Token) -> bool:
    """Return True for crd/ref/val/empty tokens."""
    kind = token[0]
    return kind == CRD or kind == REF or kind == VAL or kind == EMPTY


def token_str(token: Token) -> str:
    """Render one token compactly, e.g. ``3``, ``S0``, ``D``."""
    kind, payload = token
    if kind == STOP:
        return f"S{payload}"
    if kind == DONE:
        return "D"
    if kind == EMPTY:
        return "N"
    return str(payload)


def pretty(stream: Iterable[Token]) -> str:
    """Render a stream as a single human-readable line."""
    return " ".join(token_str(tok) for tok in stream)


class StreamProtocolError(ValueError):
    """Raised when a stream violates the SAM token protocol."""


def check_stream(stream: Sequence[Token], *, allow_empty_tokens: bool = True) -> None:
    """Validate the SAM protocol invariants for ``stream``.

    Invariants checked:

    * the stream is non-empty and ends with exactly one done token;
    * no token follows the done token;
    * stop levels are non-negative integers;
    * if ``allow_empty_tokens`` is False, no EMPTY tokens appear.

    Accepts both the legacy tuple-list form and :class:`TokenStream`
    (validated columnar-side, without materializing tuples).
    """
    if isinstance(stream, TokenStream):
        _check_columnar(stream, allow_empty_tokens=allow_empty_tokens)
        return
    if not stream:
        raise StreamProtocolError("stream is empty (missing done token)")
    if stream[-1][0] != DONE:
        raise StreamProtocolError(f"stream does not end with done: {pretty(stream[-5:])}")
    for i, token in enumerate(stream):
        kind = token[0]
        if kind == DONE and i != len(stream) - 1:
            raise StreamProtocolError(f"done token at position {i} is not last")
        if kind == STOP and (not isinstance(token[1], int) or token[1] < 0):
            raise StreamProtocolError(f"bad stop level {token[1]!r} at position {i}")
        if kind == EMPTY and not allow_empty_tokens:
            raise StreamProtocolError(f"unexpected empty token at position {i}")


def payload_tokens(stream: Iterable[Token]) -> List[Any]:
    """Return the payloads of all non-control tokens, in order."""
    return [tok[1] for tok in stream if is_payload(tok)]


def segments(stream: Sequence[Token], level: int = 0) -> Iterator[List[Token]]:
    """Split ``stream`` into segments closed by stops of level >= ``level``.

    Each yielded segment contains the payload and lower-level stop tokens
    belonging to one fiber at the requested nesting depth.  The done token is
    not included in any segment; a trailing segment before done is yielded
    even when it was not explicitly closed by a stop.
    """
    current: List[Token] = []
    saw_any = False
    for token in stream:
        kind = token[0]
        if kind == DONE:
            if current or saw_any is False:
                yield current
            return
        saw_any = True
        if kind == STOP and token[1] >= level:
            yield current
            current = []
        else:
            current.append(token)
    raise StreamProtocolError("stream not terminated with done token")


def nest_to_stream(nested: Any, kind: int = VAL) -> Stream:
    """Convert a nested list (fibertree-shaped data) into a token stream.

    Follows the full-closure convention: every fiber (including the
    outermost) is closed by a stop, with consecutive closures merged into a
    single deeper stop.  ``[[a, b], [c]]`` becomes ``a b S0 c S1 D``.
    """
    out: Stream = []

    def emit(node: Any) -> None:
        if not isinstance(node, list):
            out.append((kind, node))
            return
        for child in node:
            emit(child)
        if node and isinstance(node[-1], list):
            # The last child closed itself: deepen its stop (merged closure).
            out[-1] = (STOP, out[-1][1] + 1)
        else:
            # Leaf children or an empty fiber: emit this fiber's own stop.
            out.append((STOP, 0))

    emit(nested)
    out.append(DONE_TOKEN)
    return out


def stream_to_nest(stream: Sequence[Token], depth: int, *, check: bool = True) -> Any:
    """Convert a token stream back into a nested list of ``depth`` levels.

    Inverse of :func:`nest_to_stream` for canonical streams that follow the
    full-closure convention (every fiber, including the outermost, is closed
    by a stop before done).  ``depth`` is the number of nesting levels: a
    flat stream like ``a b S0 D`` has depth 1 and yields ``[a, b]``.

    ``check=False`` skips the protocol validation pre-pass (hot paths that
    already validated the stream, or run with checks gated off).
    """
    if check:
        check_stream(stream)
    # stack[0] is the root fiber; stack[depth-1] the innermost open fiber.
    stack: List[List[Any]] = [[] for _ in range(depth)]
    closed_root = False
    for token in stream:
        kind, payload = token
        if kind == DONE:
            break
        if kind == STOP:
            close = payload + 1
            if close > depth:
                raise StreamProtocolError(
                    f"stop level {payload} too deep for nest depth {depth}"
                )
            for lvl in range(close):
                idx = depth - 1 - lvl
                if idx >= 1:
                    stack[idx - 1].append(stack[idx])
                    stack[idx] = []
                else:
                    closed_root = True
        else:
            if closed_root:
                raise StreamProtocolError("payload token after root closure")
            stack[-1].append(payload)
    if not closed_root:
        # Tolerate streams missing the final closure (fold open fibers up).
        for lvl in range(depth - 1):
            idx = depth - 1 - lvl
            if stack[idx]:
                stack[idx - 1].append(stack[idx])
                stack[idx] = []
    return stack[0]


def strip_done(stream: Sequence[Token]) -> List[Token]:
    """Return ``stream`` without its trailing done token."""
    if stream and stream[-1][0] == DONE:
        return list(stream[:-1])
    return list(stream)


def append_done(stream: List[Token]) -> List[Token]:
    """Return ``stream`` with a done token appended (idempotent)."""
    if stream and stream[-1][0] == DONE:
        return stream
    return stream + [DONE_TOKEN]


def count_kind(stream: Iterable[Token], kind: int) -> int:
    """Count tokens of a given kind in a stream."""
    if isinstance(stream, TokenStream):
        return int(np.count_nonzero(stream.kinds == kind))
    return sum(1 for tok in stream if tok[0] == kind)


# ----------------------------------------------------------------------
# Columnar token streams
# ----------------------------------------------------------------------

#: Kinds whose payload is a non-negative/na integral quantity (coordinate,
#: reference position, stop level) reconstructed as a Python int.
_INT_PAYLOAD_KINDS = frozenset((CRD, REF, STOP))

_NUMERIC_TYPES = (int, float, np.integer, np.floating, np.bool_)


class TokenStream:
    """Columnar (structure-of-arrays) representation of a token stream.

    Instead of a ``List[Tuple[int, Any]]`` walked one token at a time, a
    :class:`TokenStream` holds three parallel columns:

    ``kinds``
        ``int8`` array of token kinds (``CRD``/``REF``/``VAL``/...).
    ``data``
        ``float64`` array of numeric payloads — coordinates, reference
        positions, stop levels, and scalar values.  Zero for payload-free
        tokens (done/empty) and for object payloads.
    ``objs``
        Optional ``object`` array (same length) carrying non-scalar payloads
        — numpy blocks of blocked formats, opaque reference handles.  ``None``
        when every payload is numeric; positions without an object payload
        hold ``None``.

    The class implements the sequence protocol over logical ``(kind,
    payload)`` tuples, so diagnostic code (``pretty``, error paths, the
    legacy-fallback kernels) can treat either representation uniformly;
    vectorized kernels operate on the columns directly.

    Conversion to/from the legacy tuple-list form is lossless up to numeric
    type (a coordinate round-trips as an equal Python int; scalar values
    round-trip as equal floats).
    """

    __slots__ = ("kinds", "data", "objs")

    def __init__(
        self,
        kinds: np.ndarray,
        data: np.ndarray,
        objs: Optional[np.ndarray] = None,
    ) -> None:
        self.kinds = kinds
        self.data = data
        self.objs = objs

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "TokenStream":
        return cls(np.empty(0, dtype=np.int8), np.empty(0, dtype=np.float64))

    @classmethod
    def from_tokens(cls, tokens: Sequence[Token]) -> "TokenStream":
        """Convert a legacy tuple-list stream to columnar form."""
        if isinstance(tokens, TokenStream):
            return tokens
        n = len(tokens)
        kinds = np.empty(n, dtype=np.int8)
        data = np.zeros(n, dtype=np.float64)
        objs: Optional[np.ndarray] = None
        for i, (kind, payload) in enumerate(tokens):
            kinds[i] = kind
            if payload is None or kind == DONE or kind == EMPTY:
                continue
            if isinstance(payload, _NUMERIC_TYPES):
                data[i] = payload
            else:
                if objs is None:
                    objs = np.full(n, None, dtype=object)
                objs[i] = payload
        return cls(kinds, data, objs)

    @classmethod
    def build(
        cls,
        kinds: np.ndarray,
        data: np.ndarray,
        objs: Optional[np.ndarray] = None,
    ) -> "TokenStream":
        """Build from freshly computed columns, normalizing dtypes."""
        return cls(
            np.ascontiguousarray(kinds, dtype=np.int8),
            np.ascontiguousarray(data, dtype=np.float64),
            objs,
        )

    @classmethod
    def concat(cls, parts: Sequence["TokenStream"]) -> "TokenStream":
        """Concatenate several columnar streams."""
        if not parts:
            return cls.empty()
        kinds = np.concatenate([p.kinds for p in parts])
        data = np.concatenate([p.data for p in parts])
        objs = None
        if any(p.objs is not None for p in parts):
            objs = np.concatenate(
                [
                    p.objs
                    if p.objs is not None
                    else np.full(len(p), None, dtype=object)
                    for p in parts
                ]
            )
        return cls(kinds, data, objs)

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_tokens(self) -> Stream:
        """Convert back to the legacy tuple-list form."""
        kinds = self.kinds
        data = self.data
        objs = self.objs
        out: Stream = []
        append = out.append
        for i in range(len(kinds)):
            kind = int(kinds[i])
            if kind == DONE:
                append(DONE_TOKEN)
            elif kind == EMPTY:
                append(EMPTY_TOKEN)
            elif objs is not None and objs[i] is not None:
                append((kind, objs[i]))
            elif kind == VAL:
                append((kind, data[i].item()))
            else:
                append((kind, int(data[i])))
        return out

    # ------------------------------------------------------------------
    # Sequence protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.kinds)

    def token_at(self, i: int) -> Token:
        kind = int(self.kinds[i])
        if kind == DONE:
            return DONE_TOKEN
        if kind == EMPTY:
            return EMPTY_TOKEN
        if self.objs is not None and self.objs[i] is not None:
            return (kind, self.objs[i])
        if kind == VAL:
            return (kind, self.data[i].item())
        return (kind, int(self.data[i]))

    def __getitem__(self, index: Union[int, slice]):
        if isinstance(index, slice):
            objs = self.objs[index] if self.objs is not None else None
            return TokenStream(self.kinds[index], self.data[index], objs)
        if index < 0:
            index += len(self.kinds)
        return self.token_at(index)

    def __iter__(self) -> Iterator[Token]:
        for i in range(len(self.kinds)):
            yield self.token_at(i)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, TokenStream):
            return streams_equal(self, other)
        if isinstance(other, (list, tuple)):
            return streams_equal(self, other)
        return NotImplemented

    def __ne__(self, other: object) -> bool:
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        return not result

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TokenStream {pretty(self)}>"

    # ------------------------------------------------------------------
    # Columnar helpers used by vectorized kernels
    # ------------------------------------------------------------------
    def control_mask(self) -> np.ndarray:
        """Boolean mask of stop/done tokens."""
        return (self.kinds == STOP) | (self.kinds == DONE)

    def payload_mask(self) -> np.ndarray:
        """Boolean mask of crd/ref/val/empty tokens."""
        return ~self.control_mask()

    def gather(self, index: np.ndarray) -> "TokenStream":
        """Positional gather preserving kinds/payloads (fancy indexing)."""
        objs = self.objs[index] if self.objs is not None else None
        return TokenStream(self.kinds[index], self.data[index], objs)

    def int_payloads(self, mask_or_index) -> np.ndarray:
        """Numeric payloads at selected positions as an int64 array."""
        return self.data[mask_or_index].astype(np.int64)

    def has_objs(self) -> bool:
        return self.objs is not None


def _check_columnar(stream: "TokenStream", *, allow_empty_tokens: bool = True) -> None:
    """Vectorized protocol validation of a columnar stream."""
    kinds = stream.kinds
    n = len(kinds)
    if n == 0:
        raise StreamProtocolError("stream is empty (missing done token)")
    if kinds[-1] != DONE:
        raise StreamProtocolError(
            f"stream does not end with done: {pretty(stream[-5:])}"
        )
    early_done = np.nonzero(kinds[:-1] == DONE)[0]
    if early_done.size:
        raise StreamProtocolError(
            f"done token at position {int(early_done[0])} is not last"
        )
    stops = kinds == STOP
    if stops.any():
        levels = stream.data[stops]
        bad = (levels < 0) | (levels != np.floor(levels))
        if bad.any():
            pos = int(np.nonzero(stops)[0][np.nonzero(bad)[0][0]])
            raise StreamProtocolError(
                f"bad stop level {stream.data[pos]!r} at position {pos}"
            )
    if not allow_empty_tokens:
        empties = np.nonzero(kinds == EMPTY)[0]
        if empties.size:
            raise StreamProtocolError(
                f"unexpected empty token at position {int(empties[0])}"
            )


def token_equal(a: Token, b: Token) -> bool:
    """Tuple-token equality that tolerates numpy-array payloads."""
    if a[0] != b[0]:
        return False
    pa, pb = a[1], b[1]
    if isinstance(pa, np.ndarray) or isinstance(pb, np.ndarray):
        return (
            isinstance(pa, np.ndarray)
            and isinstance(pb, np.ndarray)
            and pa.shape == pb.shape
            and bool(np.array_equal(pa, pb))
        )
    return bool(pa == pb)


def streams_equal(a: Sequence[Token], b: Sequence[Token]) -> bool:
    """Whole-stream equality across representations (columnar or list).

    Two streams are equal when they have the same length and every logical
    ``(kind, payload)`` token compares equal (numpy block payloads compare
    elementwise).
    """
    if len(a) != len(b):
        return False
    if isinstance(a, TokenStream) and isinstance(b, TokenStream):
        if not np.array_equal(a.kinds, b.kinds):
            return False
        if a.objs is None and b.objs is None:
            return bool(np.array_equal(a.data, b.data))
        # Mixed numeric/object payloads: fall through to tokenwise compare.
    return all(token_equal(ta, tb) for ta, tb in zip(a, b))


def as_columnar(stream: Sequence[Token]) -> "TokenStream":
    """Coerce either representation to columnar."""
    if isinstance(stream, TokenStream):
        return stream
    return TokenStream.from_tokens(stream)


def as_token_list(stream: Sequence[Token]) -> Stream:
    """Coerce either representation to the legacy tuple-list form."""
    if isinstance(stream, TokenStream):
        return stream.to_tokens()
    return list(stream)
