"""FuseFlow reproduction: fusion-centric compilation of sparse DL to dataflow.

Public API surface:

* :mod:`repro.frontend` — PyTorch-like tracing of sparse models.
* :mod:`repro.core` — the FuseFlow compiler (Einsum IR, cross-expression
  fusion, fusion tables, scheduling, heuristic).
* :mod:`repro.sam` — the SAM/SAMML abstract machine.
* :mod:`repro.ftree` — fibertree sparse tensors and formats.
* :mod:`repro.comal` — the dataflow simulator (timing models, two-level
  memory hierarchy, metrics).
* :mod:`repro.models` / :mod:`repro.data` — the evaluation's model zoo and
  dataset generators.
* :mod:`repro.driver` — the compile driver: :class:`Session` (cached
  compiles), :class:`PassPipeline` (named, pluggable passes), and
  :class:`Executable` (callable compiled programs with diagnostics).
* :mod:`repro.pipeline` — **deprecated** legacy compile/execute free
  functions (shims over the driver's default session that warn on every
  call; use :class:`~repro.driver.Session`).
"""

from . import comal, core, data, driver, ftree, models, sam
from .comal.hierarchy import HIERARCHIES, HierarchySpec, resolve_hierarchy
from .core.einsum.ast import EinsumProgram
from .core.einsum.parser import parse_program
from .core.schedule.schedule import (
    Schedule,
    cs_rewrite,
    fully_fused,
    fused_groups,
    unfused,
)
from .driver import (
    CompileDiagnostics,
    Executable,
    PassPipeline,
    Session,
    default_session,
)
from .frontend.api import Linear, ModelBuilder
from .ftree import Format, SparseTensor, csr, dcsr, dense, sparse_vector
from .pipeline import (
    CompiledProgram,
    ProgramResult,
    compare_schedules,
    compile_program,
    execute,
    run,
)

__version__ = "1.0.0"

__all__ = [
    "EinsumProgram",
    "parse_program",
    "Schedule",
    "unfused",
    "fully_fused",
    "fused_groups",
    "cs_rewrite",
    "ModelBuilder",
    "Linear",
    "SparseTensor",
    "Format",
    "csr",
    "dcsr",
    "dense",
    "sparse_vector",
    "compile_program",
    "execute",
    "run",
    "compare_schedules",
    "CompiledProgram",
    "ProgramResult",
    "Session",
    "default_session",
    "Executable",
    "PassPipeline",
    "CompileDiagnostics",
    "HIERARCHIES",
    "HierarchySpec",
    "resolve_hierarchy",
]
