"""Sweep aggregation: summaries, text tables, and machine-readable output.

Turns a pile of per-point result records into the quantities the paper's
figures report: best configuration per model, speedup of each schedule over
the baseline schedule within its (model, dataset, machine, pipeline) group,
and utilization tables per machine.  The same summary renders as fixed-width
text (``fuseflow sweep report``), as a JSON document for downstream tooling,
and as a ``BENCH_*.json`` perf artifact (one named series per point, cycles
as the value) so CI can track the trajectory over time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from ..comal.metrics import format_table

GroupKey = Tuple[str, str, str, str, str, str]


def _group_key(record: Dict[str, object]) -> GroupKey:
    """Speedup grouping: everything but the schedule must match.

    The splits axis is part of the key (like the hierarchy axis): a tiled
    and an untiled point share a schedule name, so omitting it would let
    them overwrite each other's cycles in the speedup table.  Pre-splitting
    records have no ``splits`` field and group under the empty config —
    and the pipeline is rendered via ``SweepPoint.grouping_pipeline`` (the
    same helper point IDs use) so resumed pre-splitting records land in
    the same group as their newly-computed siblings.
    """
    from .spec import SweepPoint

    point = record["point"]
    splits = point.get("splits") or {}
    pipeline = SweepPoint.grouping_pipeline(point["pipeline"], splits)
    return (
        point["model"],
        point["dataset"],
        point["machine"],
        point.get("hierarchy", "flat"),
        "+".join(pipeline),
        ",".join(f"{k}={v}" for k, v in sorted(splits.items())),
    )


def _ok(records: List[Dict[str, object]]) -> List[Dict[str, object]]:
    return [r for r in records if r.get("status") == "ok"]


def summarize(
    records: List[Dict[str, object]],
    baseline_schedule: str = "unfused",
    name: str = "sweep",
) -> Dict[str, object]:
    """Aggregate result records into the report/JSON summary structure.

    Parameters
    ----------
    records:
        Per-point result records (:func:`~repro.sweep.runner.run_point`
        output / :meth:`~repro.sweep.store.ResultStore.records`).
    baseline_schedule:
        The schedule speedups are computed against, within each
        (model, dataset, machine, hierarchy, pipeline, splits) group.
    name:
        Sweep name echoed into the summary.

    Returns
    -------
    dict
        ``points_ok``/``points_failed``/``verified``, ``best_per_model``,
        per-group ``speedups``, ``utilization`` rows, ``failures``, and
        the ok ``results``.
    """
    ok = _ok(records)
    failed = [r for r in records if r.get("status") != "ok"]

    # Best configuration (minimum cycles) per model.
    best_per_model: Dict[str, Dict[str, object]] = {}
    for record in ok:
        model = record["point"]["model"]
        cycles = record["metrics"]["cycles"]
        best = best_per_model.get(model)
        if best is None or cycles < best["cycles"]:
            best_per_model[model] = {
                "point_id": record["point_id"],
                "label": record["label"],
                "cycles": cycles,
                "schedule": record["point"]["schedule"],
                "dataset": record["point"]["dataset"],
                "machine": record["point"]["machine"],
            }

    # Speedup of each schedule over the baseline schedule, grouped by
    # (model, dataset, machine, pipeline).
    groups: Dict[GroupKey, Dict[str, float]] = {}
    for record in ok:
        key = _group_key(record)
        groups.setdefault(key, {})[record["point"]["schedule"]] = record[
            "metrics"
        ]["cycles"]
    speedups: List[Dict[str, object]] = []
    for key, cycles_by_schedule in sorted(groups.items()):
        base = cycles_by_schedule.get(baseline_schedule)
        entry: Dict[str, object] = {
            "model": key[0],
            "dataset": key[1],
            "machine": key[2],
            "hierarchy": key[3],
            "pipeline": key[4],
            "splits": key[5],
            "cycles": cycles_by_schedule,
            "baseline": baseline_schedule,
            "speedup": {
                schedule: (base / cycles if base and cycles > 0 else None)
                for schedule, cycles in cycles_by_schedule.items()
            }
            if base is not None
            else {},
        }
        speedups.append(entry)

    utilization = [
        {
            "label": record["label"],
            "machine": record["point"]["machine"],
            "compute_utilization": record["metrics"]["compute_utilization"],
            "memory_utilization": record["metrics"]["memory_utilization"],
            "operational_intensity": record["metrics"]["operational_intensity"],
        }
        for record in ok
    ]

    return {
        "name": name,
        "points_ok": len(ok),
        "points_failed": len(failed),
        "verified": all(r.get("verified", False) for r in ok) if ok else False,
        "baseline_schedule": baseline_schedule,
        "best_per_model": best_per_model,
        "speedups": speedups,
        "utilization": utilization,
        "failures": [
            {"label": r.get("label"), "error": r.get("error")} for r in failed
        ],
        "results": [
            {
                "point_id": r["point_id"],
                "label": r["label"],
                "point": r["point"],
                "metrics": r["metrics"],
                "max_abs_err": r["max_abs_err"],
            }
            for r in ok
        ],
    }


def render_summary(summary: Dict[str, object]) -> str:
    """Fixed-width text rendering of a sweep summary."""
    lines: List[str] = [
        f"sweep {summary['name']}: {summary['points_ok']} point(s) ok, "
        f"{summary['points_failed']} failed, baseline "
        f"{summary['baseline_schedule']!r}"
    ]

    if summary["results"]:
        rows = [
            [
                r["label"],
                f"{r['metrics']['cycles']:.0f}",
                f"{r['metrics']['flops']}",
                f"{r['metrics']['dram_bytes']}",
                f"{r['max_abs_err']:.2e}",
            ]
            for r in summary["results"]
        ]
        lines += ["", format_table(rows, ["point", "cycles", "flops", "bytes", "max|err|"])]

    if summary["speedups"]:
        rows = []
        for entry in summary["speedups"]:
            group = f"{entry['model']}/{entry['dataset']}/{entry['machine']}"
            if entry.get("hierarchy", "flat") != "flat":
                group += f"/{entry['hierarchy']}"
            if entry.get("splits"):
                group += f"/split:{entry['splits']}"
            for schedule, speedup in sorted(entry["speedup"].items()):
                rows.append(
                    [
                        group,
                        schedule,
                        f"{entry['cycles'][schedule]:.0f}",
                        "-" if speedup is None else f"{speedup:.2f}x",
                    ]
                )
        lines += ["", format_table(rows, ["group", "schedule", "cycles", "speedup"])]

    if summary["best_per_model"]:
        rows = [
            [model, best["label"], f"{best['cycles']:.0f}"]
            for model, best in sorted(summary["best_per_model"].items())
        ]
        lines += ["", format_table(rows, ["model", "best point", "cycles"])]

    if summary["failures"]:
        lines += [""] + [
            f"FAILED {f['label']}: {f['error']}" for f in summary["failures"]
        ]
    return "\n".join(lines)


def write_summary_json(summary: Dict[str, object], path: str) -> None:
    """Write a :func:`summarize` result to ``path`` as pretty JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(summary, fh, indent=2, sort_keys=True)
        fh.write("\n")


def bench_payload(summary: Dict[str, object]) -> Dict[str, object]:
    """The ``BENCH_*.json`` perf-tracking payload for a sweep summary.

    Format: one named series per point with cycles as the tracked value
    (lower is better), plus enough metadata for dashboards to group series.
    """
    return {
        "benchmark": f"sweep_{summary['name']}",
        "unit": "cycles",
        "lower_is_better": True,
        "baseline_schedule": summary["baseline_schedule"],
        "results": [
            {
                "name": r["label"],
                "value": r["metrics"]["cycles"],
                "extra": {
                    "flops": r["metrics"]["flops"],
                    "dram_bytes": r["metrics"]["dram_bytes"],
                    "sram_bytes": r["metrics"].get("sram_bytes", 0),
                    "spill_bytes": r["metrics"].get("spill_bytes", 0),
                    "fill_bytes": r["metrics"].get("fill_bytes", 0),
                    "tokens": r["metrics"]["tokens"],
                    "point_id": r["point_id"],
                    # Full point record so BENCH payloads double as
                    # cost-model calibration inputs (the schedule knobs
                    # are not recoverable from the opaque point_id).
                    "point": r["point"],
                },
            }
            for r in summary["results"]
        ],
    }


def write_bench_json(summary: Dict[str, object], path: Optional[str] = None) -> str:
    """Write the BENCH payload; default path is ``BENCH_sweep_<name>.json``.

    Returns
    -------
    str
        The path written, for logging.
    """
    path = path or f"BENCH_sweep_{summary['name']}.json"
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(bench_payload(summary), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path
