"""Parallel experiment-sweep subsystem.

The paper's evaluation is a sweep — many (model × dataset × schedule ×
pipeline × machine) points simulated under comal.  This package makes that
a first-class workload instead of shell loops:

* :class:`SweepSpec` / :class:`SweepPoint` — declarative cartesian grids
  and explicit point lists with stable, fingerprint-derived point IDs;
* :class:`SweepRunner` / :func:`run_sweep` — multiprocessing fan-out with
  per-worker :class:`~repro.driver.session.Session` compile caches and
  per-worker model-bundle caches;
* :class:`ResultStore` — append-only JSONL results with a spec header and
  resume-from-partial-results;
* :func:`summarize` / :func:`render_summary` / :func:`write_bench_json` —
  best-per-model, speedup-vs-baseline, and utilization aggregation, as
  text, JSON, or a ``BENCH_*.json`` perf artifact;
* :func:`sweep_schedules` — the in-process primitive the autotuner,
  ``Session.compare_schedules``, and the benchmark harness drive their
  schedule loops through.

CLI: ``fuseflow sweep run|resume|report|quick``.
"""

from .report import (
    bench_payload,
    render_summary,
    summarize,
    write_bench_json,
    write_summary_json,
)
from .runner import (
    ScheduleRun,
    SweepOutcome,
    SweepRunner,
    run_point,
    run_sweep,
    set_worker_cache_dir,
    sweep_schedules,
)
from .spec import (
    SYNTHETIC,
    SweepPoint,
    SweepSpec,
    SweepSpecError,
    build_bundle,
    compatible_datasets,
)
from .store import ResultStore, ResultStoreError

__all__ = [
    "SweepSpec",
    "SweepPoint",
    "SweepSpecError",
    "SYNTHETIC",
    "compatible_datasets",
    "build_bundle",
    "SweepRunner",
    "SweepOutcome",
    "run_sweep",
    "run_point",
    "set_worker_cache_dir",
    "sweep_schedules",
    "ScheduleRun",
    "ResultStore",
    "ResultStoreError",
    "summarize",
    "render_summary",
    "write_summary_json",
    "bench_payload",
    "write_bench_json",
]
