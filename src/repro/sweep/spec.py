"""Declarative sweep specifications: grids and points over the design space.

The paper's evaluation is a sweep — many (model × dataset × schedule ×
pipeline × machine) points simulated under comal to produce each figure.  A
:class:`SweepSpec` captures such an experiment declaratively: cartesian
grids plus explicit extra points, each resolving to a :class:`SweepPoint`
with a stable content-derived identifier.  Point IDs reuse the canonical
fingerprint idiom of the driver (sha256 over a sorted textual rendering of
every field the experiment reads), so a results file written today still
matches the same grid tomorrow and ``sweep resume`` can skip completed
points by ID alone.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..backend.base import BACKEND_NAMES
from ..comal.hierarchy import resolve_hierarchy
from ..comal.machines import MACHINES
from ..core.schedule.split import validate_split_item
from ..data.registry import GPT3_DATASET, GRAPH_DATASETS, SAE_DATASETS
from ..driver.pipeline import DEFAULT_PASS_ORDER
from ..models.common import ModelBundle

#: Synthetic stand-in "dataset" accepted by every model.
SYNTHETIC = "synthetic"

MODEL_NAMES: Tuple[str, ...] = ("gcn", "graphsage", "sae", "gpt3")
SCHEDULE_NAMES: Tuple[str, ...] = ("unfused", "partial", "full", "cs")


class SweepSpecError(ValueError):
    """Raised for malformed sweep specifications."""


def compatible_datasets(model: str) -> List[str]:
    """Dataset names (Table 2 registry + synthetic) valid for ``model``."""
    if model in ("gcn", "graphsage"):
        return [*GRAPH_DATASETS, SYNTHETIC]
    if model == "sae":
        return [*SAE_DATASETS, SYNTHETIC]
    if model == "gpt3":
        return [GPT3_DATASET.name, SYNTHETIC]
    raise SweepSpecError(f"unknown model {model!r}")


def _freeze_args(args: Optional[Dict[str, object]]) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted((args or {}).items()))


@dataclass(frozen=True)
class SweepPoint:
    """One experiment: a model on a dataset under a schedule, pipeline, machine.

    Attributes
    ----------
    model, dataset, schedule, machine:
        The grid coordinates of the experiment.
    pipeline:
        Compiler pass names, in order.
    model_args:
        Keyword overrides for the model builder, sorted for hashability.
    par:
        Index-variable parallelization factors applied to the schedule.
    splits:
        Index-variable tile counts (index splitting) applied to the
        schedule; indices a model's regions do not iterate are skipped by
        the ``split-indices`` pass, so one config can broadcast across
        models.
    hierarchy:
        Memory-hierarchy preset name (``"flat"`` reproduces the DRAM-only
        simulator); accepts the ``preset@capacity_bytes`` form so sweeps
        can grid over buffer sizes.
    backend:
        Execution backend name (``"interp"``, ``"columnar"``, or
        ``"codegen"``); the empty string (default) runs under the worker
        session's default.  Backends are bit-exact by contract, so this
        axis changes wall-clock only, never metrics.
    """

    model: str
    dataset: str = SYNTHETIC
    schedule: str = "partial"
    machine: str = "rda"
    pipeline: Tuple[str, ...] = DEFAULT_PASS_ORDER
    # Keyword overrides for the model builder, sorted for hashability.
    model_args: Tuple[Tuple[str, object], ...] = ()
    # Index-variable parallelization factors applied to the schedule.
    par: Tuple[Tuple[str, int], ...] = ()
    # Index-variable tile counts applied to the schedule (index splitting).
    splits: Tuple[Tuple[str, int], ...] = ()
    # Memory-hierarchy preset (see repro.comal.hierarchy.HIERARCHIES).
    hierarchy: str = "flat"
    # Execution backend ("" = worker session default).
    backend: str = ""

    @classmethod
    def make(
        cls,
        model: str,
        dataset: str = SYNTHETIC,
        schedule: str = "partial",
        machine: str = "rda",
        pipeline: Sequence[str] = DEFAULT_PASS_ORDER,
        model_args: Optional[Dict[str, object]] = None,
        par: Optional[Dict[str, int]] = None,
        splits: Optional[Dict[str, int]] = None,
        hierarchy: str = "flat",
        backend: str = "",
    ) -> "SweepPoint":
        """Build a point from plain dict/list arguments.

        The exact no-op tile count 1 is normalized away: the split-indices
        pass no-ops it, so ``splits={'x1': 1}`` must collapse into the
        unsplit baseline (same point ID, no duplicate compile) rather than
        masquerade as a distinct tiled configuration.  Invalid counts
        (0, negatives, bools) are kept so :meth:`validate` rejects them.
        """
        # Only the exact no-op (1) collapses; invalid counts (0, -3, bools,
        # non-ints) are kept so validate() rejects them loudly.
        normalized = {
            k: v
            for k, v in (splits or {}).items()
            if not (isinstance(v, int) and not isinstance(v, bool) and v == 1)
        }
        return cls(
            model=model,
            dataset=dataset,
            schedule=schedule,
            machine=machine,
            pipeline=tuple(pipeline),
            model_args=_freeze_args(model_args),
            par=_freeze_args(par),  # type: ignore[arg-type]
            splits=_freeze_args(normalized),  # type: ignore[arg-type]
            hierarchy=hierarchy,
            backend=backend,
        )

    def validate(self) -> None:
        """Reject unknown models/datasets/schedules/machines/hierarchies.

        Raises
        ------
        SweepSpecError
            With the offending field and the valid alternatives.
        """
        if self.model not in MODEL_NAMES:
            raise SweepSpecError(
                f"unknown model {self.model!r}; expected one of {MODEL_NAMES}"
            )
        if self.dataset not in compatible_datasets(self.model):
            raise SweepSpecError(
                f"dataset {self.dataset!r} is not valid for model "
                f"{self.model!r}; valid: {compatible_datasets(self.model)}"
            )
        if self.schedule not in SCHEDULE_NAMES:
            raise SweepSpecError(
                f"unknown schedule {self.schedule!r}; expected one of "
                f"{SCHEDULE_NAMES}"
            )
        if self.machine not in MACHINES:
            raise SweepSpecError(
                f"unknown machine {self.machine!r}; expected one of "
                f"{sorted(MACHINES)}"
            )
        try:
            resolve_hierarchy(self.hierarchy)
        except ValueError as exc:
            raise SweepSpecError(str(exc)) from None
        if self.backend and self.backend not in BACKEND_NAMES:
            raise SweepSpecError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{BACKEND_NAMES} (or '' for the session default)"
            )
        for index_var, tiles in self.splits:
            try:
                validate_split_item(index_var, tiles)
            except ValueError as exc:
                raise SweepSpecError(str(exc)) from None

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @staticmethod
    def grouping_pipeline(pipeline, splits) -> List[str]:
        """Pipeline rendering for point IDs and report grouping.

        Without splits, the split-indices pass is a no-op, so a pipeline
        containing it compiles byte-identically to one without it; it is
        dropped from the rendering in that case so pre-splitting results
        files keep their point IDs (`sweep resume` compatibility) and old
        records share speedup groups with new ones.  With splits present
        the full pipeline is used — an explicit with/without-split-indices
        ablation then gets distinct IDs.  The report's ``_group_key``
        calls this same helper so the two renderings cannot drift.
        """
        names = list(pipeline)
        if not splits:
            names = [n for n in names if n != "split-indices"]
        return names

    def fingerprint(self) -> str:
        """Stable content hash over every field the experiment reads.

        Same idiom as ``EinsumProgram.fingerprint`` / ``Schedule.fingerprint``
        (a sha256 over a canonical textual rendering), and deliberately
        *not* dependent on object identity or field insertion order — the
        ResultStore keys resumability on this.
        """
        # Hash only the builder arguments this model actually reads, so a
        # spec broadcasting e.g. {'nodes', 'density'} across models gives
        # the same ID as one listing only the relevant keys.
        args = _filtered_args(self.model, dict(self.model_args))
        pipeline_for_id = self.grouping_pipeline(self.pipeline, self.splits)
        parts = [
            f"model {self.model}",
            f"dataset {self.dataset}",
            f"schedule {self.schedule}",
            f"machine {self.machine}",
            f"pipeline {pipeline_for_id}",
            f"model_args {sorted(args.items())}",
            f"par {sorted(self.par)}",
        ]
        # Appended only when non-flat so gridding hierarchies never churns
        # the IDs of flat points.  (Note: IDs also hash the pipeline, and
        # place-memory joining DEFAULT_PASS_ORDER was a one-time ID churn —
        # resuming a pre-hierarchy results file re-runs its points, which
        # is correct-but-wasteful since the default compile flow changed.)
        if self.hierarchy != "flat":
            parts.append(f"hierarchy {self.hierarchy}")
        # Same idiom for the split axis: unsplit points keep their IDs.
        if self.splits:
            parts.append(f"splits {sorted(self.splits)}")
        # And for the backend axis: default-backend points keep their IDs.
        if self.backend:
            parts.append(f"backend {self.backend}")
        return hashlib.sha256("\n".join(parts).encode()).hexdigest()

    @property
    def point_id(self) -> str:
        """Short stable identifier used in result files and reports."""
        return self.fingerprint()[:16]

    def label(self) -> str:
        """Human-readable point name for tables and logs.

        Covers everything the point ID hashes (args the model reads,
        pipeline variants, parallelization), so two points with different
        IDs never share a label — BENCH series names key on this.
        """
        bits = [self.model, self.dataset, self.schedule, self.machine]
        if self.hierarchy != "flat":
            bits.append(self.hierarchy)
        args = _filtered_args(self.model, dict(self.model_args))
        if args:
            bits.append(",".join(f"{k}={v}" for k, v in sorted(args.items())))
        if tuple(self.pipeline) != DEFAULT_PASS_ORDER:
            bits.append("+".join(self.pipeline))
        if self.par:
            bits.append(",".join(f"{k}={v}" for k, v in self.par))
        if self.splits:
            bits.append("split:" + ",".join(f"{k}={v}" for k, v in self.splits))
        if self.backend:
            bits.append(f"backend:{self.backend}")
        return "/".join(bits)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, object]:
        """JSON-safe rendering, inverse of :meth:`from_record`."""
        return {
            "model": self.model,
            "dataset": self.dataset,
            "schedule": self.schedule,
            "machine": self.machine,
            "pipeline": list(self.pipeline),
            "model_args": dict(self.model_args),
            "par": dict(self.par),
            "splits": dict(self.splits),
            "hierarchy": self.hierarchy,
            "backend": self.backend,
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "SweepPoint":
        """Rebuild a point from :meth:`to_record` output (old files: flat)."""
        return cls.make(
            model=record["model"],
            dataset=record.get("dataset", SYNTHETIC),
            schedule=record.get("schedule", "partial"),
            machine=record.get("machine", "rda"),
            pipeline=record.get("pipeline", DEFAULT_PASS_ORDER),
            model_args=record.get("model_args") or {},
            par=record.get("par") or {},
            splits={
                k: int(v) for k, v in (record.get("splits") or {}).items()
            },
            hierarchy=record.get("hierarchy", "flat"),
            backend=record.get("backend", ""),
        )


#: Builder keyword arguments each model accepts (others are dropped, so one
#: spec-level ``--nodes 24`` can broadcast across models with different
#: signatures without exploding).
_MODEL_ARG_NAMES: Dict[str, Tuple[str, ...]] = {
    "gcn": ("nodes", "features", "density", "pattern", "hidden", "classes", "seed"),
    "graphsage": ("nodes", "features", "density", "pattern", "hidden", "classes", "seed"),
    "sae": ("nodes", "hidden", "weight_density", "seed"),
    "gpt3": ("seq_len", "d_model", "block", "n_layers", "ffn_mult", "seed"),
}


def _filtered_args(model: str, args: Dict[str, object]) -> Dict[str, object]:
    names = _MODEL_ARG_NAMES.get(model)
    if names is None:
        # Unknown model: keep everything, so fingerprint()/label() stay
        # total functions and validate() (inside run_point's try) reports
        # the bad model as an error record instead of a raised KeyError.
        return dict(args)
    return {k: v for k, v in args.items() if k in names}


def build_bundle(point: SweepPoint) -> ModelBundle:
    """Materialize the model bundle a sweep point describes.

    Deterministic: dataset seeds come from the Table 2 registry and
    synthetic builders take an explicit seed (default 0), so the same point
    always yields the same program, binding, and reference.
    """
    import numpy as np

    from ..data.registry import graph_dataset, sae_dataset
    from ..models.gcn import build_gcn, gcn_on_synthetic
    from ..models.gpt3 import build_gpt3
    from ..models.graphsage import build_graphsage, graphsage_on_synthetic
    from ..models.sae import build_sae

    point.validate()
    args = _filtered_args(point.model, dict(point.model_args))
    if point.model in ("gcn", "graphsage"):
        if point.dataset == SYNTHETIC:
            builder = gcn_on_synthetic if point.model == "gcn" else graphsage_on_synthetic
            return builder(**args)
        entry, adj, feats = graph_dataset(point.dataset)
        layer_args = {
            k: v for k, v in args.items() if k in ("hidden", "classes")
        }
        builder = build_gcn if point.model == "gcn" else build_graphsage
        return builder(adj, feats, seed=entry.seed, **layer_args)
    if point.model == "sae":
        if point.dataset == SYNTHETIC:
            dim = int(args.pop("nodes", 16))
            seed = int(args.pop("seed", 0))
            rng = np.random.default_rng(seed)
            return build_sae(rng.random((5, dim)), seed=seed, **args)
        entry, x = sae_dataset(point.dataset)
        layer_args = {k: v for k, v in args.items() if k in ("hidden", "weight_density")}
        return build_sae(x, seed=entry.seed, **layer_args)
    # gpt3
    if point.dataset != SYNTHETIC:
        entry = GPT3_DATASET
        args.setdefault("seq_len", entry.sim_nodes)
        args.setdefault("d_model", entry.sim_features)
        args.setdefault("seed", entry.seed)
    return build_gpt3(**args)


@dataclass
class SweepSpec:
    """A declarative experiment sweep: cartesian grid + explicit points."""

    name: str = "sweep"
    models: List[str] = field(default_factory=lambda: ["gcn", "sae"])
    # None means "synthetic only"; dataset names are filtered per model.
    datasets: Optional[List[str]] = None
    schedules: List[str] = field(
        default_factory=lambda: ["unfused", "partial", "full"]
    )
    machines: List[str] = field(default_factory=lambda: ["rda", "fpga"])
    # Memory-hierarchy presets; None means flat only.  Accepts the
    # "preset@capacity_bytes" form for buffer-size grids.
    hierarchies: Optional[List[str]] = None
    # Pass-name lists; None means the default pipeline only.
    pipelines: Optional[List[List[str]]] = None
    # Builder keyword overrides broadcast to every grid point (filtered to
    # each model's accepted arguments).
    model_args: Dict[str, object] = field(default_factory=dict)
    # Parallelization factors broadcast to every grid point.
    par: Dict[str, int] = field(default_factory=dict)
    # Index-splitting axis: each entry is one split configuration (index
    # variable -> tile count) gridded against everything else; None means
    # unsplit only.  An empty dict entry is the explicit unsplit baseline,
    # so `splits=[{}, {"x1": 8}]` compares tiled vs untiled point-for-point.
    splits: Optional[List[Dict[str, int]]] = None
    # Execution-backend axis; None means the session default only.  An
    # empty string entry is the explicit default baseline, so
    # `backends=["", "codegen"]` compares backends point-for-point.
    backends: Optional[List[str]] = None
    # Explicit extra points appended after the grid.
    extra_points: List[SweepPoint] = field(default_factory=list)
    # The schedule speedups are reported against.
    baseline_schedule: str = "unfused"

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------
    def points(self) -> List[SweepPoint]:
        """Expand the grid (+ extras) into validated, deduplicated points.

        Model-incompatible (model, dataset) pairs are skipped rather than
        rejected, so one grid can mix graph and SAE datasets.
        """
        points: List[SweepPoint] = []
        seen: set = set()
        matched_datasets: set = set()
        pipelines = self.pipelines or [list(DEFAULT_PASS_ORDER)]
        hierarchies = self.hierarchies or ["flat"]
        # Falsy (None or []) falls back to unsplit-only, matching how the
        # pipelines axis treats an empty list — an empty split axis must
        # not zero out the whole grid.
        split_axis = self.splits or [{}]
        backend_axis = self.backends or [""]
        for model in self.models:
            datasets = self.datasets if self.datasets is not None else [SYNTHETIC]
            valid = set(compatible_datasets(model))
            for dataset in datasets:
                if dataset not in valid:
                    continue
                matched_datasets.add(dataset)
                for schedule in self.schedules:
                    for machine in self.machines:
                        for hierarchy in hierarchies:
                            for split_config in split_axis:
                                for backend in backend_axis:
                                    for pipeline in pipelines:
                                        point = SweepPoint.make(
                                            model=model,
                                            dataset=dataset,
                                            schedule=schedule,
                                            machine=machine,
                                            pipeline=pipeline,
                                            model_args=self.model_args,
                                            par=self.par,
                                            splits=split_config,
                                            hierarchy=hierarchy,
                                            backend=backend,
                                        )
                                        point.validate()
                                        if point.point_id not in seen:
                                            seen.add(point.point_id)
                                            points.append(point)
        if self.datasets is not None:
            # A dataset no listed model can use is a typo or a missing
            # model, not cross-model mixing; silently shrinking the grid
            # would make an incomplete sweep look complete.
            unmatched = [d for d in self.datasets if d not in matched_datasets]
            if unmatched:
                raise SweepSpecError(
                    f"dataset(s) {unmatched} match none of the models "
                    f"{self.models}; known datasets per model: "
                    + ", ".join(
                        f"{m}: {compatible_datasets(m)}" for m in self.models
                    )
                )
        for point in self.extra_points:
            point.validate()
            if point.point_id not in seen:
                seen.add(point.point_id)
                points.append(point)
        if not points:
            raise SweepSpecError(
                "sweep spec expands to zero points (check model/dataset "
                "compatibility)"
            )
        return points

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable content hash over the whole spec.

        Same idiom as :meth:`SweepPoint.fingerprint` (sha256 over a
        canonical rendering — here the sorted-keys JSON of
        :meth:`to_record`), so two specs agree iff they describe the same
        experiment.  ``run_sweep(resume=True)`` compares the caller's spec
        against the stored header through this, refusing to silently
        resume a *different* sweep under an old results file.
        """
        rendering = json.dumps(self.to_record(), sort_keys=True)
        return hashlib.sha256(rendering.encode("utf-8")).hexdigest()

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_record(self) -> Dict[str, object]:
        """JSON-safe rendering, inverse of :meth:`from_record`."""
        return {
            "name": self.name,
            "models": list(self.models),
            "datasets": None if self.datasets is None else list(self.datasets),
            "schedules": list(self.schedules),
            "machines": list(self.machines),
            "hierarchies": (
                None if self.hierarchies is None else list(self.hierarchies)
            ),
            "pipelines": self.pipelines,
            "model_args": dict(self.model_args),
            "par": dict(self.par),
            "splits": (
                None
                if self.splits is None
                else [dict(config) for config in self.splits]
            ),
            "backends": (
                None if self.backends is None else list(self.backends)
            ),
            "extra_points": [p.to_record() for p in self.extra_points],
            "baseline_schedule": self.baseline_schedule,
        }

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "SweepSpec":
        """Rebuild a spec from :meth:`to_record` output (missing keys default)."""
        return cls(
            name=record.get("name", "sweep"),
            models=list(record.get("models", ["gcn", "sae"])),
            datasets=record.get("datasets"),
            schedules=list(record.get("schedules", ["unfused", "partial", "full"])),
            machines=list(record.get("machines", ["rda", "fpga"])),
            hierarchies=record.get("hierarchies"),
            pipelines=record.get("pipelines"),
            model_args=dict(record.get("model_args") or {}),
            par={k: int(v) for k, v in (record.get("par") or {}).items()},
            splits=(
                None
                if record.get("splits") is None
                else [
                    {k: int(v) for k, v in config.items()}
                    for config in record["splits"]
                ]
            ),
            backends=record.get("backends"),
            extra_points=[
                SweepPoint.from_record(p) for p in record.get("extra_points", [])
            ],
            baseline_schedule=record.get("baseline_schedule", "unfused"),
        )

    def save(self, path: str) -> None:
        """Write this spec to ``path`` as pretty JSON (for ``--spec``)."""
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_record(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "SweepSpec":
        """Read a spec saved by :meth:`save` (or written by hand)."""
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_record(json.load(fh))
