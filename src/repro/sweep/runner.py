"""Sweep execution: fan points out across workers with shared compile caches.

Two layers:

* :func:`sweep_schedules` — the in-process primitive (re-exported from
  :mod:`repro.driver.sweeping`, where it lives below the autotuner,
  ``Session.compare_schedules``, and the benchmark harness that all drive
  their loops through it).
* :class:`SweepRunner` — the process-parallel engine: expands a
  :class:`~repro.sweep.spec.SweepSpec`, skips points already completed in
  the :class:`~repro.sweep.store.ResultStore` (resume), and fans the rest
  out over worker processes.  Each worker keeps module-level caches — one
  ``Session`` per (machine, pipeline) and one model bundle per
  (model, dataset, args) — so points sharing a model or a compile
  fingerprint pay tracing/lowering once per worker, not once per point.

Every point is functionally verified against its bundle's dense reference;
the per-point record carries ``max_abs_err`` so a sweep doubles as a
correctness regression over the whole grid.

Failure tolerance (see ``docs/reliability.md``): the parallel engine is a
supervisor over dedicated worker processes, not a bare pool.  A worker
that *crashes* (OOM kill, segfault, an injected ``sweep.point`` crash
fault) loses only its in-flight point — the supervisor re-spawns the
worker and re-dispatches the point; a worker that *hangs* past
``point_timeout`` is killed the same way; a point that keeps failing
transiently is retried with exponential backoff up to ``max_attempts``
and then *quarantined* as a terminal ``"crashed"``/``"timeout"`` (or
``"error"``) record, so the sweep always completes with one terminal
record per point and ``resume`` converges instead of aborting on the
first lost worker.
"""

from __future__ import annotations

import os
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..comal.machines import MACHINES
from ..driver.pipeline import PassPipeline
from ..driver.session import Session
from ..driver.sweeping import ScheduleRun, sweep_schedules
from ..reliability import fault_point
from .spec import SweepPoint, SweepSpec, build_bundle
from .store import ResultStore, ResultStoreError

__all__ = [
    "ScheduleRun",
    "sweep_schedules",
    "SweepRunner",
    "SweepOutcome",
    "run_sweep",
    "run_point",
    "clear_worker_caches",
    "default_workers",
    "set_worker_cache_dir",
]

#: Exception type names (the prefix of an error record's ``error`` field)
#: treated as *transient*: worth retrying with backoff before giving the
#: point up.  Everything else — verification failures, schedule errors,
#: real bugs — is deterministic and fails fast on the first attempt.
TRANSIENT_ERROR_TYPES = frozenset(
    {
        "InjectedFault",
        "TimeoutError",
        "ConnectionError",
        "ConnectionResetError",
        "ConnectionRefusedError",
        "BrokenPipeError",
        "InterruptedError",
        "BlockingIOError",
        "OSError",
        "IOError",
        "MemoryError",
    }
)


def _is_transient(record: Dict[str, object]) -> bool:
    """Whether an error record looks retryable (exception-type allowlist)."""
    if record.get("status") != "error":
        return False
    error = str(record.get("error", ""))
    return error.split(":", 1)[0].strip() in TRANSIENT_ERROR_TYPES

# ----------------------------------------------------------------------
# Worker-side execution (used both inline and in worker processes)
# ----------------------------------------------------------------------

# Per-process caches.  In a worker process these live for the pool's
# lifetime, so every point handed to that worker shares compile work via
# the Session cache and tracing work via the bundle cache.
_SESSIONS: Dict[Tuple[str, Tuple[str, ...], str, str, str], Session] = {}
_BUNDLES: Dict[Tuple[str, str, Tuple[Tuple[str, object], ...]], object] = {}

# Persistent compile-cache directory worker sessions attach to.  ``None``
# defers to Session's own resolution (the FUSEFLOW_CACHE_DIR environment
# variable, else no disk cache).  Set via :func:`set_worker_cache_dir` —
# which also serves as the process-pool initializer, so spawned workers
# (not just forked ones) see the runner's choice.
_CACHE_DIR: Optional[str] = None


def set_worker_cache_dir(cache_dir: Optional[str]) -> None:
    """Point this process's worker sessions at a persistent compile cache.

    Doubles as the worker-pool initializer: :class:`SweepRunner` passes its
    ``cache_dir`` through here so every worker's sessions warm-start from
    (and write back to) the same on-disk cache as the parent.
    """
    global _CACHE_DIR
    _CACHE_DIR = cache_dir


def _session_for(
    machine: str,
    pipeline: Tuple[str, ...],
    hierarchy: str = "flat",
    backend: str = "",
) -> Session:
    """The per-process Session for (machine, pipeline, hierarchy, backend)."""
    key = (machine, tuple(pipeline), hierarchy, backend, _CACHE_DIR or "")
    session = _SESSIONS.get(key)
    if session is None:
        session = Session(
            machine=MACHINES[machine],
            pipeline=PassPipeline.from_names(pipeline),
            cache_size=1024,
            hierarchy=hierarchy,
            backend=backend or None,
            disk_cache=_CACHE_DIR,
        )
        _SESSIONS[key] = session
    return session


def _bundle_for(point: SweepPoint):
    key = (point.model, point.dataset, tuple(point.model_args))
    bundle = _BUNDLES.get(key)
    if bundle is None:
        bundle = build_bundle(point)
        _BUNDLES[key] = bundle
    return bundle


def run_point(point: SweepPoint) -> Dict[str, object]:
    """Execute one sweep point; never raises — failures become records.

    Parameters
    ----------
    point:
        The experiment to run; bundle and session come from the
        per-process caches.

    Returns
    -------
    dict
        A JSON-safe result record: ``status`` (``"ok"``/``"error"``),
        ``metrics`` (cycles, FLOPs, per-level memory traffic,
        utilizations), ``max_abs_err`` vs the dense reference,
        fingerprints, and cache/timing metadata.  A point that executes
        but disagrees with the reference is an ``"error"`` record.
    """
    from ..models.common import VERIFY_TOLERANCE

    started = time.perf_counter()
    base = {
        "type": "result",
        "point_id": point.point_id,
        "label": point.label(),
        "point": point.to_record(),
        "worker_pid": os.getpid(),
    }
    try:
        # Fault site: an injected raise becomes an error record (retried
        # when transient), a hang trips the supervisor's point timeout,
        # and a crash takes the whole worker process down — each exercises
        # one leg of the runner's recovery machinery.
        # Keyed by the human-readable label so ``match=`` globs can target
        # e.g. ``*unfused*`` without knowing content-hash point IDs.
        fault_point("sweep.point", key=point.label())
        bundle = _bundle_for(point)
        session = _session_for(
            point.machine, point.pipeline, point.hierarchy, point.backend
        )
        schedule = bundle.schedule(point.schedule)
        schedule.par = dict(point.par)
        schedule.splits = dict(point.splits)
        before = session.cache_info()
        executable = session.compile(bundle.program, schedule)
        cache_hit = session.cache_info().hits > before.hits
        result = executable(bundle.binding)
        max_abs_err = bundle.max_abs_err(result)
        verified = bool(max_abs_err < VERIFY_TOLERANCE)
        metrics = result.metrics
        machine = MACHINES[point.machine]
        base.update(
            {
                # A point that executes but disagrees with the dense
                # reference is a failure: nonzero exit codes, counted in
                # points_failed, and retried by resume.
                "status": "ok" if verified else "error",
                "metrics": {
                    "cycles": metrics.cycles,
                    "flops": metrics.flops,
                    "dram_bytes": metrics.dram_bytes,
                    "sram_bytes": metrics.sram_bytes,
                    "spill_bytes": metrics.spill_bytes,
                    "fill_bytes": metrics.fill_bytes,
                    "tokens": metrics.tokens,
                    "num_kernels": metrics.num_kernels,
                    "operational_intensity": metrics.operational_intensity(),
                    "compute_utilization": metrics.compute_utilization(machine),
                    "memory_utilization": metrics.memory_utilization(machine),
                },
                "max_abs_err": max_abs_err,
                "verified": verified,
                "fingerprints": {
                    "program": bundle.program.fingerprint(),
                    "schedule": schedule.fingerprint(),
                    "pipeline": session.pipeline.fingerprint(),
                },
                "compile_cache_hit": cache_hit,
                "compile_seconds": executable.compiled.compile_seconds,
                "elapsed_seconds": time.perf_counter() - started,
            }
        )
        if not verified:
            base["error"] = (
                f"verification failed: max |err| {max_abs_err:.3e} >= "
                f"{VERIFY_TOLERANCE:.0e} vs dense reference"
            )
    except Exception as exc:
        base.update(
            {
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=8),
                "elapsed_seconds": time.perf_counter() - started,
            }
        )
    return base


def _run_point_record(record: Dict[str, object]) -> Dict[str, object]:
    """Pool entrypoint: points travel as JSON-safe records."""
    return run_point(SweepPoint.from_record(record))


def _worker_main(conn, cache_dir: Optional[str]) -> None:
    """Worker-process loop: recv a point record, run it, send the result.

    One point in flight per worker, over a dedicated duplex pipe — that
    is what lets the supervisor attribute a crash or hang to exactly one
    point.  A ``None`` message (or a closed pipe) is the shutdown signal.
    """
    set_worker_cache_dir(cache_dir)
    try:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message is None:
                break
            try:
                conn.send(_run_point_record(message))
            except (BrokenPipeError, OSError):
                break  # supervisor went away; nothing left to report to
    finally:
        try:
            conn.close()
        except OSError:
            pass


def clear_worker_caches() -> None:
    """Drop the per-process session/bundle caches (tests, memory pressure)."""
    _SESSIONS.clear()
    _BUNDLES.clear()


# ----------------------------------------------------------------------
# The parallel runner
# ----------------------------------------------------------------------


@dataclass
class SweepOutcome:
    """What one ``SweepRunner.run`` call did.

    ``failed`` counts every non-``"ok"`` terminal record, including
    quarantined ``"crashed"``/``"timeout"`` points; ``retries`` counts
    extra attempts the runner made recovering from crashes, hangs, and
    transient errors (0 on a healthy run).
    """

    total_points: int
    ran: int
    skipped: int
    failed: int
    elapsed_seconds: float
    records: List[Dict[str, object]] = field(default_factory=list)
    retries: int = 0

    def describe(self) -> str:
        """One-line human-readable summary of the run."""
        text = (
            f"{self.total_points} point(s): {self.ran} ran "
            f"({self.failed} failed), {self.skipped} resumed from store, "
            f"{self.elapsed_seconds:.1f}s"
        )
        if self.retries:
            text += f", {self.retries} retr(ies)"
        return text


@dataclass
class _PointTask:
    """Supervisor bookkeeping for one point across its attempts."""

    point: SweepPoint
    attempts: int = 0
    not_before: float = 0.0  # monotonic gate for backoff re-dispatch


class _WorkerHandle:
    """One supervised worker process plus its dedicated pipe."""

    __slots__ = ("process", "conn", "task", "deadline")

    def __init__(self, process, conn) -> None:
        self.process = process
        self.conn = conn
        self.task: Optional[_PointTask] = None
        self.deadline: Optional[float] = None

    def retire(self, kill: bool = False) -> None:
        """Stop this worker (``kill=True`` = SIGKILL a hung process)."""
        if kill and self.process.is_alive():
            self.process.kill()
        self.process.join(timeout=5.0)
        if self.process.is_alive():  # pragma: no cover - last resort
            self.process.kill()
            self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


def default_workers() -> int:
    """Default worker-process count: CPU count minus one, capped at 8."""
    return max(1, min(8, (os.cpu_count() or 2) - 1))


class SweepRunner:
    """Fan a sweep spec's points out across worker processes.

    Parameters
    ----------
    spec:
        The sweep to execute.
    store:
        Optional :class:`~repro.sweep.store.ResultStore` records are
        appended to as they land.
    workers:
        Worker processes (``None`` = :func:`default_workers`); 1 runs
        inline.
    resume:
        Skip points whose latest store record succeeded.
    cache_dir:
        Optional persistent compile-cache directory
        (:class:`~repro.driver.diskcache.DiskCache`); worker sessions —
        inline and in pool processes — warm-start compiles from it and
        write new entries back, so repeated sweeps over the same grid pay
        lowering once per entry, not once per process.  ``None`` defers to
        ``FUSEFLOW_CACHE_DIR``.
    point_timeout:
        Per-point wall-clock timeout in seconds.  A worker still busy on
        one point past this is presumed hung, killed, and re-spawned; the
        point is retried and eventually quarantined as a ``"timeout"``
        record.  ``None`` (default) disables the timeout.  Enforced by
        the parallel supervisor only — an inline (``workers=1``) run has
        no second process to do the killing.
    max_attempts:
        Dispatch attempts per point before a crashing / hanging /
        transiently-failing point is quarantined with a terminal record
        (default 3).  Deterministic failures are never retried.
    retry_backoff:
        Base of the exponential re-dispatch delay: attempt ``n`` waits
        ``retry_backoff * 2**(n-1)`` seconds first (default 0.25s).
    """

    def __init__(
        self,
        spec: SweepSpec,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        resume: bool = False,
        cache_dir: Optional[str] = None,
        point_timeout: Optional[float] = None,
        max_attempts: Optional[int] = None,
        retry_backoff: float = 0.25,
    ) -> None:
        if point_timeout is not None and point_timeout <= 0:
            raise ValueError("point_timeout must be positive (or None)")
        if max_attempts is not None and max_attempts < 1:
            raise ValueError("max_attempts must be >= 1 (or None)")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.spec = spec
        self.store = store
        self.workers = default_workers() if workers is None else max(1, workers)
        self.resume = resume
        self.cache_dir = cache_dir
        self.point_timeout = point_timeout
        self.max_attempts = 3 if max_attempts is None else max_attempts
        self.retry_backoff = retry_backoff

    def run(
        self, progress: Optional[Callable[[Dict[str, object]], None]] = None
    ) -> SweepOutcome:
        """Execute all pending points; returns the aggregate outcome.

        With ``resume=True`` every point whose latest store record succeeded
        is skipped.  Each completed record is appended to the store (and
        handed to ``progress``) as soon as it lands, so interrupting the
        sweep loses at most the in-flight points.

        Parameters
        ----------
        progress:
            Optional callback invoked with each record as it completes.

        Returns
        -------
        SweepOutcome
            Counts (ran/skipped/failed), elapsed time, and the records.
        """
        started = time.perf_counter()
        points = self.spec.points()
        done: set = set()
        if self.resume and self.store is not None:
            done = self.store.completed_ids()
        todo = [p for p in points if p.point_id not in done]

        records: List[Dict[str, object]] = []

        def _collect(record: Dict[str, object]) -> None:
            records.append(record)
            if self.store is not None:
                self.store.append(record)
            if progress is not None:
                progress(record)

        if self.workers == 1 or len(todo) <= 1:
            retries = self._run_inline(todo, _collect)
        else:
            retries = self._run_parallel(todo, _collect)

        failed = sum(1 for r in records if r.get("status") != "ok")
        return SweepOutcome(
            total_points=len(points),
            ran=len(records),
            skipped=len(points) - len(todo),
            failed=failed,
            elapsed_seconds=time.perf_counter() - started,
            records=records,
            retries=retries,
        )

    def _run_inline(
        self,
        todo: List[SweepPoint],
        collect: Callable[[Dict[str, object]], None],
    ) -> int:
        """In-process execution with transient-error retries (no pool).

        Crash/hang containment needs a second process and so lives in
        :meth:`_run_parallel` only; inline runs still get the bounded
        retry-with-backoff loop for transient failures.
        """
        if self.cache_dir is not None:
            set_worker_cache_dir(self.cache_dir)
        retries = 0
        for point in todo:
            attempts = 1
            record = run_point(point)
            while _is_transient(record) and attempts < self.max_attempts:
                time.sleep(self.retry_backoff * (2 ** (attempts - 1)))
                attempts += 1
                retries += 1
                record = run_point(point)
            if attempts > 1:
                # Annotated only on retried points, so a healthy sweep's
                # records stay byte-identical to the no-retry engine.
                record = dict(record)
                record["attempts"] = attempts
            collect(record)
        return retries

    def _run_parallel(
        self,
        todo: List[SweepPoint],
        collect: Callable[[Dict[str, object]], None],
    ) -> int:
        """Supervise worker processes; survive crashes, hangs, and retries.

        One dedicated process + duplex pipe per worker slot, one point in
        flight per worker.  The supervisor multiplexes over every busy
        worker's pipe *and* process sentinel, so three failure signals are
        distinguishable and each maps to a recovery:

        * **result arrives** — collect it, or re-dispatch with backoff if
          the error is transient and attempts remain;
        * **process sentinel fires** (worker died: OOM kill, segfault,
          injected crash) — re-spawn the worker, re-dispatch or
          quarantine its point as a ``"crashed"`` record;
        * **deadline passes** with neither (worker hung) — SIGKILL the
          worker, re-spawn, re-dispatch or quarantine as ``"timeout"``.

        Returns the number of extra attempts made (retries).
        """
        import multiprocessing
        import sys
        from multiprocessing.connection import wait as connection_wait

        if sys.platform.startswith("linux"):
            # Workers inherit the parent's imported modules for free.
            # Restricted to Linux: forking after numpy/Accelerate or ObjC
            # frameworks initialize is unsafe on macOS (why CPython's own
            # default there is spawn).
            ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-Linux platforms
            ctx = multiprocessing.get_context()

        def spawn() -> _WorkerHandle:
            parent_conn, child_conn = ctx.Pipe()
            process = ctx.Process(
                target=_worker_main,
                args=(child_conn, self.cache_dir),
                daemon=True,
            )
            process.start()
            child_conn.close()
            return _WorkerHandle(process, parent_conn)

        ready: Deque[_PointTask] = deque(_PointTask(p) for p in todo)
        waiting: List[_PointTask] = []  # backoff-gated re-dispatches
        retries = 0

        def finish_or_retry(
            worker: _WorkerHandle, record: Dict[str, object]
        ) -> None:
            """A result landed: collect it, or back off and retry."""
            nonlocal retries
            task = worker.task
            worker.task = None
            worker.deadline = None
            if _is_transient(record) and task.attempts < self.max_attempts:
                retries += 1
                task.not_before = time.monotonic() + self.retry_backoff * (
                    2 ** (task.attempts - 1)
                )
                waiting.append(task)
                return
            if task.attempts > 1:
                # Annotated only on retried points, so a healthy sweep's
                # records stay byte-identical to the no-retry engine.
                record = dict(record)
                record["attempts"] = task.attempts
            collect(record)

        def redispatch_or_quarantine(task: _PointTask, status: str, error: str) -> None:
            """The attempt was *lost* (crash/hang), not merely failed."""
            nonlocal retries
            if task.attempts < self.max_attempts:
                retries += 1
                task.not_before = time.monotonic() + self.retry_backoff * (
                    2 ** (task.attempts - 1)
                )
                waiting.append(task)
                return
            collect(
                {
                    "type": "result",
                    "point_id": task.point.point_id,
                    "label": task.point.label(),
                    "point": task.point.to_record(),
                    "status": status,
                    "error": error,
                    "attempts": task.attempts,
                }
            )

        workers = [spawn() for _ in range(min(self.workers, len(todo)))]
        try:
            while ready or waiting or any(w.task is not None for w in workers):
                now = time.monotonic()
                for task in [t for t in waiting if t.not_before <= now]:
                    waiting.remove(task)
                    ready.append(task)
                for worker in workers:
                    if worker.task is None and ready:
                        task = ready.popleft()
                        task.attempts += 1
                        worker.task = task
                        worker.deadline = (
                            now + self.point_timeout
                            if self.point_timeout is not None
                            else None
                        )
                        try:
                            worker.conn.send(task.point.to_record())
                        except (OSError, ValueError):
                            # Worker already dead: its sentinel fires on
                            # the next wait and the crash path recovers.
                            pass
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    # Nothing running; sleep until the next retry is due.
                    if waiting:
                        pause = min(t.not_before for t in waiting) - time.monotonic()
                        if pause > 0:
                            time.sleep(pause)
                    continue
                timeout: Optional[float] = None
                for worker in busy:
                    if worker.deadline is not None:
                        remain = max(0.0, worker.deadline - now)
                        timeout = remain if timeout is None else min(timeout, remain)
                for task in waiting:
                    remain = max(0.0, task.not_before - now)
                    timeout = remain if timeout is None else min(timeout, remain)
                signaled = set(
                    connection_wait(
                        [w.conn for w in busy]
                        + [w.process.sentinel for w in busy],
                        timeout=timeout,
                    )
                )
                now = time.monotonic()
                for index, worker in enumerate(workers):
                    if worker.task is None:
                        continue
                    task = worker.task
                    if worker.conn in signaled:
                        try:
                            record = worker.conn.recv()
                        except (EOFError, OSError):
                            # Died mid-send: treat as a crash below.
                            worker.retire()
                            workers[index] = spawn()
                            redispatch_or_quarantine(
                                task,
                                "crashed",
                                "worker process died mid-result "
                                f"(pid {worker.process.pid}, exit code "
                                f"{worker.process.exitcode}) on attempt "
                                f"{task.attempts}",
                            )
                            continue
                        finish_or_retry(worker, record)
                    elif worker.process.sentinel in signaled:
                        exitcode = worker.process.exitcode
                        worker.retire()
                        workers[index] = spawn()
                        redispatch_or_quarantine(
                            task,
                            "crashed",
                            "worker process crashed "
                            f"(pid {worker.process.pid}, exit code "
                            f"{exitcode}) while running this point on "
                            f"attempt {task.attempts}",
                        )
                    elif worker.deadline is not None and now >= worker.deadline:
                        worker.retire(kill=True)
                        workers[index] = spawn()
                        redispatch_or_quarantine(
                            task,
                            "timeout",
                            f"point exceeded the {self.point_timeout:g}s "
                            "wall-clock timeout; hung worker "
                            f"(pid {worker.process.pid}) killed on attempt "
                            f"{task.attempts}",
                        )
        finally:
            for worker in workers:
                if worker.process.is_alive() and worker.task is None:
                    try:
                        worker.conn.send(None)
                    except (OSError, ValueError):
                        pass
            for worker in workers:
                worker.retire(kill=worker.task is not None)
        return retries


def run_sweep(
    spec: Optional[SweepSpec] = None,
    store_path: Optional[str] = None,
    workers: Optional[int] = None,
    resume: bool = False,
    force: bool = False,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
    cache_dir: Optional[str] = None,
    point_timeout: Optional[float] = None,
    max_attempts: Optional[int] = None,
) -> SweepOutcome:
    """One-call convenience: open/create the store and run the sweep.

    Parameters
    ----------
    spec:
        The sweep to run.  On resume it may be ``None`` — the store's
        header is the spec then; a caller-supplied spec is *checked*
        against that header by fingerprint and a mismatch raises (an old
        results file must never silently hijack a different sweep).
    store_path:
        JSONL results file; ``None`` keeps results in memory only.
    workers:
        Worker processes (``None`` = :func:`default_workers`).
    resume:
        Continue a previous run, skipping completed points by ID.
    force:
        Overwrite an existing results file instead of refusing.
    progress:
        Optional per-record callback.
    cache_dir:
        Persistent compile-cache directory shared by all worker sessions
        (see :class:`SweepRunner`).
    point_timeout:
        Per-point wall-clock timeout in seconds (see :class:`SweepRunner`).
    max_attempts:
        Attempts per point before quarantine (see :class:`SweepRunner`).

    Returns
    -------
    SweepOutcome

    Raises
    ------
    ResultStoreError
        Resume without a store path, a missing/corrupt results file, an
        existing file without ``force``, or a resume spec whose
        fingerprint disagrees with the stored header.
    """
    store: Optional[ResultStore] = None
    if resume and store_path is None:
        raise ResultStoreError(
            "resume=True needs store_path (there is nothing to resume from)"
        )
    if spec is None and not resume:
        raise ResultStoreError("spec is required unless resuming from a store")
    if store_path is not None:
        if resume:
            store = ResultStore.open(store_path)
            stored_spec = store.spec()
            if stored_spec is None:
                raise ResultStoreError(
                    f"results file {store_path!r} has no spec header; cannot "
                    "resume (was it generated by `sweep run`?)"
                )
            if spec is not None:
                caller_fp = spec.fingerprint()
                stored_fp = stored_spec.fingerprint()
                if caller_fp != stored_fp:
                    raise ResultStoreError(
                        f"resume spec mismatch for {store_path!r}: the "
                        f"caller's spec (fingerprint {caller_fp[:16]}) is "
                        "not the sweep this results file records "
                        f"(fingerprint {stored_fp[:16]}); resuming would "
                        "run the stored grid, not the requested one — pass "
                        "spec=None to continue the stored sweep, or a new "
                        "store_path to start this one"
                    )
            spec = stored_spec
        else:
            store = ResultStore.create(store_path, spec, force=force)
    try:
        return SweepRunner(
            spec,
            store=store,
            workers=workers,
            resume=resume,
            cache_dir=cache_dir,
            point_timeout=point_timeout,
            max_attempts=max_attempts,
        ).run(progress)
    finally:
        if store is not None:
            store.close()
