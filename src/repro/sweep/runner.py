"""Sweep execution: fan points out across workers with shared compile caches.

Two layers:

* :func:`sweep_schedules` — the in-process primitive (re-exported from
  :mod:`repro.driver.sweeping`, where it lives below the autotuner,
  ``Session.compare_schedules``, and the benchmark harness that all drive
  their loops through it).
* :class:`SweepRunner` — the process-parallel engine: expands a
  :class:`~repro.sweep.spec.SweepSpec`, skips points already completed in
  the :class:`~repro.sweep.store.ResultStore` (resume), and fans the rest
  out over worker processes.  Each worker keeps module-level caches — one
  ``Session`` per (machine, pipeline) and one model bundle per
  (model, dataset, args) — so points sharing a model or a compile
  fingerprint pay tracing/lowering once per worker, not once per point.

Every point is functionally verified against its bundle's dense reference;
the per-point record carries ``max_abs_err`` so a sweep doubles as a
correctness regression over the whole grid.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..comal.machines import MACHINES
from ..driver.pipeline import PassPipeline
from ..driver.session import Session
from ..driver.sweeping import ScheduleRun, sweep_schedules
from .spec import SweepPoint, SweepSpec, build_bundle
from .store import ResultStore, ResultStoreError

__all__ = [
    "ScheduleRun",
    "sweep_schedules",
    "SweepRunner",
    "SweepOutcome",
    "run_sweep",
    "run_point",
    "clear_worker_caches",
    "default_workers",
]

# ----------------------------------------------------------------------
# Worker-side execution (used both inline and in worker processes)
# ----------------------------------------------------------------------

# Per-process caches.  In a worker process these live for the pool's
# lifetime, so every point handed to that worker shares compile work via
# the Session cache and tracing work via the bundle cache.
_SESSIONS: Dict[Tuple[str, Tuple[str, ...], str, str], Session] = {}
_BUNDLES: Dict[Tuple[str, str, Tuple[Tuple[str, object], ...]], object] = {}


def _session_for(
    machine: str,
    pipeline: Tuple[str, ...],
    hierarchy: str = "flat",
    backend: str = "",
) -> Session:
    """The per-process Session for (machine, pipeline, hierarchy, backend)."""
    key = (machine, tuple(pipeline), hierarchy, backend)
    session = _SESSIONS.get(key)
    if session is None:
        session = Session(
            machine=MACHINES[machine],
            pipeline=PassPipeline.from_names(pipeline),
            cache_size=1024,
            hierarchy=hierarchy,
            backend=backend or None,
        )
        _SESSIONS[key] = session
    return session


def _bundle_for(point: SweepPoint):
    key = (point.model, point.dataset, tuple(point.model_args))
    bundle = _BUNDLES.get(key)
    if bundle is None:
        bundle = build_bundle(point)
        _BUNDLES[key] = bundle
    return bundle


def run_point(point: SweepPoint) -> Dict[str, object]:
    """Execute one sweep point; never raises — failures become records.

    Parameters
    ----------
    point:
        The experiment to run; bundle and session come from the
        per-process caches.

    Returns
    -------
    dict
        A JSON-safe result record: ``status`` (``"ok"``/``"error"``),
        ``metrics`` (cycles, FLOPs, per-level memory traffic,
        utilizations), ``max_abs_err`` vs the dense reference,
        fingerprints, and cache/timing metadata.  A point that executes
        but disagrees with the reference is an ``"error"`` record.
    """
    from ..models.common import VERIFY_TOLERANCE

    started = time.perf_counter()
    base = {
        "type": "result",
        "point_id": point.point_id,
        "label": point.label(),
        "point": point.to_record(),
        "worker_pid": os.getpid(),
    }
    try:
        bundle = _bundle_for(point)
        session = _session_for(
            point.machine, point.pipeline, point.hierarchy, point.backend
        )
        schedule = bundle.schedule(point.schedule)
        schedule.par = dict(point.par)
        schedule.splits = dict(point.splits)
        before = session.cache_info()
        executable = session.compile(bundle.program, schedule)
        cache_hit = session.cache_info().hits > before.hits
        result = executable(bundle.binding)
        max_abs_err = bundle.max_abs_err(result)
        verified = bool(max_abs_err < VERIFY_TOLERANCE)
        metrics = result.metrics
        machine = MACHINES[point.machine]
        base.update(
            {
                # A point that executes but disagrees with the dense
                # reference is a failure: nonzero exit codes, counted in
                # points_failed, and retried by resume.
                "status": "ok" if verified else "error",
                "metrics": {
                    "cycles": metrics.cycles,
                    "flops": metrics.flops,
                    "dram_bytes": metrics.dram_bytes,
                    "sram_bytes": metrics.sram_bytes,
                    "spill_bytes": metrics.spill_bytes,
                    "fill_bytes": metrics.fill_bytes,
                    "tokens": metrics.tokens,
                    "num_kernels": metrics.num_kernels,
                    "operational_intensity": metrics.operational_intensity(),
                    "compute_utilization": metrics.compute_utilization(machine),
                    "memory_utilization": metrics.memory_utilization(machine),
                },
                "max_abs_err": max_abs_err,
                "verified": verified,
                "fingerprints": {
                    "program": bundle.program.fingerprint(),
                    "schedule": schedule.fingerprint(),
                    "pipeline": session.pipeline.fingerprint(),
                },
                "compile_cache_hit": cache_hit,
                "compile_seconds": executable.compiled.compile_seconds,
                "elapsed_seconds": time.perf_counter() - started,
            }
        )
        if not verified:
            base["error"] = (
                f"verification failed: max |err| {max_abs_err:.3e} >= "
                f"{VERIFY_TOLERANCE:.0e} vs dense reference"
            )
    except Exception as exc:
        base.update(
            {
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=8),
                "elapsed_seconds": time.perf_counter() - started,
            }
        )
    return base


def _run_point_record(record: Dict[str, object]) -> Dict[str, object]:
    """Pool entrypoint: points travel as JSON-safe records."""
    return run_point(SweepPoint.from_record(record))


def clear_worker_caches() -> None:
    """Drop the per-process session/bundle caches (tests, memory pressure)."""
    _SESSIONS.clear()
    _BUNDLES.clear()


# ----------------------------------------------------------------------
# The parallel runner
# ----------------------------------------------------------------------


@dataclass
class SweepOutcome:
    """What one ``SweepRunner.run`` call did."""

    total_points: int
    ran: int
    skipped: int
    failed: int
    elapsed_seconds: float
    records: List[Dict[str, object]] = field(default_factory=list)

    def describe(self) -> str:
        """One-line human-readable summary of the run."""
        return (
            f"{self.total_points} point(s): {self.ran} ran "
            f"({self.failed} failed), {self.skipped} resumed from store, "
            f"{self.elapsed_seconds:.1f}s"
        )


def default_workers() -> int:
    """Default worker-process count: CPU count minus one, capped at 8."""
    return max(1, min(8, (os.cpu_count() or 2) - 1))


class SweepRunner:
    """Fan a sweep spec's points out across worker processes.

    Parameters
    ----------
    spec:
        The sweep to execute.
    store:
        Optional :class:`~repro.sweep.store.ResultStore` records are
        appended to as they land.
    workers:
        Worker processes (``None`` = :func:`default_workers`); 1 runs
        inline.
    resume:
        Skip points whose latest store record succeeded.
    """

    def __init__(
        self,
        spec: SweepSpec,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        resume: bool = False,
    ) -> None:
        self.spec = spec
        self.store = store
        self.workers = default_workers() if workers is None else max(1, workers)
        self.resume = resume

    def run(
        self, progress: Optional[Callable[[Dict[str, object]], None]] = None
    ) -> SweepOutcome:
        """Execute all pending points; returns the aggregate outcome.

        With ``resume=True`` every point whose latest store record succeeded
        is skipped.  Each completed record is appended to the store (and
        handed to ``progress``) as soon as it lands, so interrupting the
        sweep loses at most the in-flight points.

        Parameters
        ----------
        progress:
            Optional callback invoked with each record as it completes.

        Returns
        -------
        SweepOutcome
            Counts (ran/skipped/failed), elapsed time, and the records.
        """
        started = time.perf_counter()
        points = self.spec.points()
        done: set = set()
        if self.resume and self.store is not None:
            done = self.store.completed_ids()
        todo = [p for p in points if p.point_id not in done]

        records: List[Dict[str, object]] = []

        def _collect(record: Dict[str, object]) -> None:
            records.append(record)
            if self.store is not None:
                self.store.append(record)
            if progress is not None:
                progress(record)

        if self.workers == 1 or len(todo) <= 1:
            for point in todo:
                _collect(run_point(point))
        else:
            self._run_parallel(todo, _collect)

        failed = sum(1 for r in records if r.get("status") != "ok")
        return SweepOutcome(
            total_points=len(points),
            ran=len(records),
            skipped=len(points) - len(todo),
            failed=failed,
            elapsed_seconds=time.perf_counter() - started,
            records=records,
        )

    def _run_parallel(
        self,
        todo: List[SweepPoint],
        collect: Callable[[Dict[str, object]], None],
    ) -> None:
        import concurrent.futures
        import multiprocessing
        import sys

        if sys.platform.startswith("linux"):
            # Workers inherit the parent's imported modules for free.
            # Restricted to Linux: forking after numpy/Accelerate or ObjC
            # frameworks initialize is unsafe on macOS (why CPython's own
            # default there is spawn).
            ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-Linux platforms
            ctx = multiprocessing.get_context()
        workers = min(self.workers, len(todo))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers, mp_context=ctx
        ) as pool:
            futures = [
                pool.submit(_run_point_record, point.to_record())
                for point in todo
            ]
            for future in concurrent.futures.as_completed(futures):
                collect(future.result())


def run_sweep(
    spec: SweepSpec,
    store_path: Optional[str] = None,
    workers: Optional[int] = None,
    resume: bool = False,
    force: bool = False,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
) -> SweepOutcome:
    """One-call convenience: open/create the store and run the sweep.

    Parameters
    ----------
    spec:
        The sweep to run (ignored on resume: the store's header wins).
    store_path:
        JSONL results file; ``None`` keeps results in memory only.
    workers:
        Worker processes (``None`` = :func:`default_workers`).
    resume:
        Continue a previous run, skipping completed points by ID.
    force:
        Overwrite an existing results file instead of refusing.
    progress:
        Optional per-record callback.

    Returns
    -------
    SweepOutcome

    Raises
    ------
    ResultStoreError
        Resume without a store path, a missing/corrupt results file, or
        an existing file without ``force``.
    """
    store: Optional[ResultStore] = None
    if resume and store_path is None:
        raise ResultStoreError(
            "resume=True needs store_path (there is nothing to resume from)"
        )
    if store_path is not None:
        if resume:
            store = ResultStore.open(store_path)
            stored_spec = store.spec()
            if stored_spec is None:
                raise ResultStoreError(
                    f"results file {store_path!r} has no spec header; cannot "
                    "resume (was it generated by `sweep run`?)"
                )
            spec = stored_spec
        else:
            store = ResultStore.create(store_path, spec, force=force)
    try:
        return SweepRunner(
            spec, store=store, workers=workers, resume=resume
        ).run(progress)
    finally:
        if store is not None:
            store.close()
