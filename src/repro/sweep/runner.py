"""Sweep execution: fan points out across workers with shared compile caches.

Two layers:

* :func:`sweep_schedules` — the in-process primitive (re-exported from
  :mod:`repro.driver.sweeping`, where it lives below the autotuner,
  ``Session.compare_schedules``, and the benchmark harness that all drive
  their loops through it).
* :class:`SweepRunner` — the process-parallel engine: expands a
  :class:`~repro.sweep.spec.SweepSpec`, skips points already completed in
  the :class:`~repro.sweep.store.ResultStore` (resume), and fans the rest
  out over worker processes.  Each worker keeps module-level caches — one
  ``Session`` per (machine, pipeline) and one model bundle per
  (model, dataset, args) — so points sharing a model or a compile
  fingerprint pay tracing/lowering once per worker, not once per point.

Every point is functionally verified against its bundle's dense reference;
the per-point record carries ``max_abs_err`` so a sweep doubles as a
correctness regression over the whole grid.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..comal.machines import MACHINES
from ..driver.pipeline import PassPipeline
from ..driver.session import Session
from ..driver.sweeping import ScheduleRun, sweep_schedules
from .spec import SweepPoint, SweepSpec, build_bundle
from .store import ResultStore, ResultStoreError

__all__ = [
    "ScheduleRun",
    "sweep_schedules",
    "SweepRunner",
    "SweepOutcome",
    "run_sweep",
    "run_point",
    "clear_worker_caches",
    "default_workers",
    "set_worker_cache_dir",
]

# ----------------------------------------------------------------------
# Worker-side execution (used both inline and in worker processes)
# ----------------------------------------------------------------------

# Per-process caches.  In a worker process these live for the pool's
# lifetime, so every point handed to that worker shares compile work via
# the Session cache and tracing work via the bundle cache.
_SESSIONS: Dict[Tuple[str, Tuple[str, ...], str, str, str], Session] = {}
_BUNDLES: Dict[Tuple[str, str, Tuple[Tuple[str, object], ...]], object] = {}

# Persistent compile-cache directory worker sessions attach to.  ``None``
# defers to Session's own resolution (the FUSEFLOW_CACHE_DIR environment
# variable, else no disk cache).  Set via :func:`set_worker_cache_dir` —
# which also serves as the process-pool initializer, so spawned workers
# (not just forked ones) see the runner's choice.
_CACHE_DIR: Optional[str] = None


def set_worker_cache_dir(cache_dir: Optional[str]) -> None:
    """Point this process's worker sessions at a persistent compile cache.

    Doubles as the worker-pool initializer: :class:`SweepRunner` passes its
    ``cache_dir`` through here so every worker's sessions warm-start from
    (and write back to) the same on-disk cache as the parent.
    """
    global _CACHE_DIR
    _CACHE_DIR = cache_dir


def _session_for(
    machine: str,
    pipeline: Tuple[str, ...],
    hierarchy: str = "flat",
    backend: str = "",
) -> Session:
    """The per-process Session for (machine, pipeline, hierarchy, backend)."""
    key = (machine, tuple(pipeline), hierarchy, backend, _CACHE_DIR or "")
    session = _SESSIONS.get(key)
    if session is None:
        session = Session(
            machine=MACHINES[machine],
            pipeline=PassPipeline.from_names(pipeline),
            cache_size=1024,
            hierarchy=hierarchy,
            backend=backend or None,
            disk_cache=_CACHE_DIR,
        )
        _SESSIONS[key] = session
    return session


def _bundle_for(point: SweepPoint):
    key = (point.model, point.dataset, tuple(point.model_args))
    bundle = _BUNDLES.get(key)
    if bundle is None:
        bundle = build_bundle(point)
        _BUNDLES[key] = bundle
    return bundle


def run_point(point: SweepPoint) -> Dict[str, object]:
    """Execute one sweep point; never raises — failures become records.

    Parameters
    ----------
    point:
        The experiment to run; bundle and session come from the
        per-process caches.

    Returns
    -------
    dict
        A JSON-safe result record: ``status`` (``"ok"``/``"error"``),
        ``metrics`` (cycles, FLOPs, per-level memory traffic,
        utilizations), ``max_abs_err`` vs the dense reference,
        fingerprints, and cache/timing metadata.  A point that executes
        but disagrees with the reference is an ``"error"`` record.
    """
    from ..models.common import VERIFY_TOLERANCE

    started = time.perf_counter()
    base = {
        "type": "result",
        "point_id": point.point_id,
        "label": point.label(),
        "point": point.to_record(),
        "worker_pid": os.getpid(),
    }
    try:
        bundle = _bundle_for(point)
        session = _session_for(
            point.machine, point.pipeline, point.hierarchy, point.backend
        )
        schedule = bundle.schedule(point.schedule)
        schedule.par = dict(point.par)
        schedule.splits = dict(point.splits)
        before = session.cache_info()
        executable = session.compile(bundle.program, schedule)
        cache_hit = session.cache_info().hits > before.hits
        result = executable(bundle.binding)
        max_abs_err = bundle.max_abs_err(result)
        verified = bool(max_abs_err < VERIFY_TOLERANCE)
        metrics = result.metrics
        machine = MACHINES[point.machine]
        base.update(
            {
                # A point that executes but disagrees with the dense
                # reference is a failure: nonzero exit codes, counted in
                # points_failed, and retried by resume.
                "status": "ok" if verified else "error",
                "metrics": {
                    "cycles": metrics.cycles,
                    "flops": metrics.flops,
                    "dram_bytes": metrics.dram_bytes,
                    "sram_bytes": metrics.sram_bytes,
                    "spill_bytes": metrics.spill_bytes,
                    "fill_bytes": metrics.fill_bytes,
                    "tokens": metrics.tokens,
                    "num_kernels": metrics.num_kernels,
                    "operational_intensity": metrics.operational_intensity(),
                    "compute_utilization": metrics.compute_utilization(machine),
                    "memory_utilization": metrics.memory_utilization(machine),
                },
                "max_abs_err": max_abs_err,
                "verified": verified,
                "fingerprints": {
                    "program": bundle.program.fingerprint(),
                    "schedule": schedule.fingerprint(),
                    "pipeline": session.pipeline.fingerprint(),
                },
                "compile_cache_hit": cache_hit,
                "compile_seconds": executable.compiled.compile_seconds,
                "elapsed_seconds": time.perf_counter() - started,
            }
        )
        if not verified:
            base["error"] = (
                f"verification failed: max |err| {max_abs_err:.3e} >= "
                f"{VERIFY_TOLERANCE:.0e} vs dense reference"
            )
    except Exception as exc:
        base.update(
            {
                "status": "error",
                "error": f"{type(exc).__name__}: {exc}",
                "traceback": traceback.format_exc(limit=8),
                "elapsed_seconds": time.perf_counter() - started,
            }
        )
    return base


def _run_point_record(record: Dict[str, object]) -> Dict[str, object]:
    """Pool entrypoint: points travel as JSON-safe records."""
    return run_point(SweepPoint.from_record(record))


def clear_worker_caches() -> None:
    """Drop the per-process session/bundle caches (tests, memory pressure)."""
    _SESSIONS.clear()
    _BUNDLES.clear()


# ----------------------------------------------------------------------
# The parallel runner
# ----------------------------------------------------------------------


@dataclass
class SweepOutcome:
    """What one ``SweepRunner.run`` call did."""

    total_points: int
    ran: int
    skipped: int
    failed: int
    elapsed_seconds: float
    records: List[Dict[str, object]] = field(default_factory=list)

    def describe(self) -> str:
        """One-line human-readable summary of the run."""
        return (
            f"{self.total_points} point(s): {self.ran} ran "
            f"({self.failed} failed), {self.skipped} resumed from store, "
            f"{self.elapsed_seconds:.1f}s"
        )


def default_workers() -> int:
    """Default worker-process count: CPU count minus one, capped at 8."""
    return max(1, min(8, (os.cpu_count() or 2) - 1))


class SweepRunner:
    """Fan a sweep spec's points out across worker processes.

    Parameters
    ----------
    spec:
        The sweep to execute.
    store:
        Optional :class:`~repro.sweep.store.ResultStore` records are
        appended to as they land.
    workers:
        Worker processes (``None`` = :func:`default_workers`); 1 runs
        inline.
    resume:
        Skip points whose latest store record succeeded.
    cache_dir:
        Optional persistent compile-cache directory
        (:class:`~repro.driver.diskcache.DiskCache`); worker sessions —
        inline and in pool processes — warm-start compiles from it and
        write new entries back, so repeated sweeps over the same grid pay
        lowering once per entry, not once per process.  ``None`` defers to
        ``FUSEFLOW_CACHE_DIR``.
    """

    def __init__(
        self,
        spec: SweepSpec,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        resume: bool = False,
        cache_dir: Optional[str] = None,
    ) -> None:
        self.spec = spec
        self.store = store
        self.workers = default_workers() if workers is None else max(1, workers)
        self.resume = resume
        self.cache_dir = cache_dir

    def run(
        self, progress: Optional[Callable[[Dict[str, object]], None]] = None
    ) -> SweepOutcome:
        """Execute all pending points; returns the aggregate outcome.

        With ``resume=True`` every point whose latest store record succeeded
        is skipped.  Each completed record is appended to the store (and
        handed to ``progress``) as soon as it lands, so interrupting the
        sweep loses at most the in-flight points.

        Parameters
        ----------
        progress:
            Optional callback invoked with each record as it completes.

        Returns
        -------
        SweepOutcome
            Counts (ran/skipped/failed), elapsed time, and the records.
        """
        started = time.perf_counter()
        points = self.spec.points()
        done: set = set()
        if self.resume and self.store is not None:
            done = self.store.completed_ids()
        todo = [p for p in points if p.point_id not in done]

        records: List[Dict[str, object]] = []

        def _collect(record: Dict[str, object]) -> None:
            records.append(record)
            if self.store is not None:
                self.store.append(record)
            if progress is not None:
                progress(record)

        if self.workers == 1 or len(todo) <= 1:
            if self.cache_dir is not None:
                set_worker_cache_dir(self.cache_dir)
            for point in todo:
                _collect(run_point(point))
        else:
            self._run_parallel(todo, _collect)

        failed = sum(1 for r in records if r.get("status") != "ok")
        return SweepOutcome(
            total_points=len(points),
            ran=len(records),
            skipped=len(points) - len(todo),
            failed=failed,
            elapsed_seconds=time.perf_counter() - started,
            records=records,
        )

    def _run_parallel(
        self,
        todo: List[SweepPoint],
        collect: Callable[[Dict[str, object]], None],
    ) -> None:
        import concurrent.futures
        import multiprocessing
        import sys

        if sys.platform.startswith("linux"):
            # Workers inherit the parent's imported modules for free.
            # Restricted to Linux: forking after numpy/Accelerate or ObjC
            # frameworks initialize is unsafe on macOS (why CPython's own
            # default there is spawn).
            ctx = multiprocessing.get_context("fork")
        else:  # pragma: no cover - non-Linux platforms
            ctx = multiprocessing.get_context()
        workers = min(self.workers, len(todo))
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            # The initializer (not fork inheritance) carries the cache dir,
            # so spawn-based platforms get it too.
            initializer=set_worker_cache_dir,
            initargs=(self.cache_dir,),
        ) as pool:
            futures = [
                pool.submit(_run_point_record, point.to_record())
                for point in todo
            ]
            for future in concurrent.futures.as_completed(futures):
                collect(future.result())


def run_sweep(
    spec: Optional[SweepSpec] = None,
    store_path: Optional[str] = None,
    workers: Optional[int] = None,
    resume: bool = False,
    force: bool = False,
    progress: Optional[Callable[[Dict[str, object]], None]] = None,
    cache_dir: Optional[str] = None,
) -> SweepOutcome:
    """One-call convenience: open/create the store and run the sweep.

    Parameters
    ----------
    spec:
        The sweep to run.  On resume it may be ``None`` — the store's
        header is the spec then; a caller-supplied spec is *checked*
        against that header by fingerprint and a mismatch raises (an old
        results file must never silently hijack a different sweep).
    store_path:
        JSONL results file; ``None`` keeps results in memory only.
    workers:
        Worker processes (``None`` = :func:`default_workers`).
    resume:
        Continue a previous run, skipping completed points by ID.
    force:
        Overwrite an existing results file instead of refusing.
    progress:
        Optional per-record callback.
    cache_dir:
        Persistent compile-cache directory shared by all worker sessions
        (see :class:`SweepRunner`).

    Returns
    -------
    SweepOutcome

    Raises
    ------
    ResultStoreError
        Resume without a store path, a missing/corrupt results file, an
        existing file without ``force``, or a resume spec whose
        fingerprint disagrees with the stored header.
    """
    store: Optional[ResultStore] = None
    if resume and store_path is None:
        raise ResultStoreError(
            "resume=True needs store_path (there is nothing to resume from)"
        )
    if spec is None and not resume:
        raise ResultStoreError("spec is required unless resuming from a store")
    if store_path is not None:
        if resume:
            store = ResultStore.open(store_path)
            stored_spec = store.spec()
            if stored_spec is None:
                raise ResultStoreError(
                    f"results file {store_path!r} has no spec header; cannot "
                    "resume (was it generated by `sweep run`?)"
                )
            if spec is not None:
                caller_fp = spec.fingerprint()
                stored_fp = stored_spec.fingerprint()
                if caller_fp != stored_fp:
                    raise ResultStoreError(
                        f"resume spec mismatch for {store_path!r}: the "
                        f"caller's spec (fingerprint {caller_fp[:16]}) is "
                        "not the sweep this results file records "
                        f"(fingerprint {stored_fp[:16]}); resuming would "
                        "run the stored grid, not the requested one — pass "
                        "spec=None to continue the stored sweep, or a new "
                        "store_path to start this one"
                    )
            spec = stored_spec
        else:
            store = ResultStore.create(store_path, spec, force=force)
    try:
        return SweepRunner(
            spec,
            store=store,
            workers=workers,
            resume=resume,
            cache_dir=cache_dir,
        ).run(progress)
    finally:
        if store is not None:
            store.close()
