"""JSONL-backed result store with resume-from-partial-results.

A sweep's results file is append-only JSON-lines: the first line is a
``spec`` header recording the :class:`~repro.sweep.spec.SweepSpec` that
generated the file, every following line is one point's outcome.  Append
is flushed per record, so a killed sweep leaves a valid prefix and
``sweep resume`` picks up exactly where it died: completed point IDs are
read back and skipped.  Re-running a point simply appends a newer record;
readers take the last record per point ID.
"""

from __future__ import annotations

import json
import os
import warnings
from typing import Dict, Iterator, List, Optional, Set

from .spec import SweepSpec

STORE_VERSION = 1


class ResultStoreError(RuntimeError):
    """Raised for malformed or mismatched result files."""


class ResultStore:
    """Append-only JSONL store for sweep point results."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._handle = None
        #: Torn (crash-truncated) trailing lines skipped by reads so far —
        #: resume tooling surfaces this so silent data loss stays visible.
        self.torn_tails_skipped = 0

    # ------------------------------------------------------------------
    # Creation / opening
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, path: str, spec: SweepSpec, force: bool = False) -> "ResultStore":
        """Start a fresh results file with a spec header line."""
        if os.path.exists(path) and not force:
            raise ResultStoreError(
                f"results file {path!r} already exists; use resume to "
                "continue it or pass force/--force to overwrite"
            )
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        store = cls(path)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(
                json.dumps(
                    {
                        "type": "spec",
                        "version": STORE_VERSION,
                        "spec": spec.to_record(),
                    },
                    sort_keys=True,
                )
                + "\n"
            )
        return store

    @classmethod
    def open(cls, path: str) -> "ResultStore":
        """Open an existing results file for reading and appending.

        Raises
        ------
        ResultStoreError
            If ``path`` does not exist.
        """
        if not os.path.exists(path):
            raise ResultStoreError(f"no results file at {path!r}")
        return cls(path)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def _lines(self) -> Iterator[Dict[str, object]]:
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            raw = fh.readlines()
        last_lineno = max(
            (i for i, line in enumerate(raw, start=1) if line.strip()), default=0
        )
        for lineno, line in enumerate(raw, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                yield json.loads(line)
            except json.JSONDecodeError as exc:
                if lineno == last_lineno and lineno > 1:
                    # A crash mid-append leaves a partially-written final
                    # line; resume must recover exactly these files, so
                    # treat the torn tail as "that point never finished".
                    # A corrupt *first* line is not a torn tail — the file
                    # was never a results file.  Counted and warned, never
                    # silent: a kill -9 mid-append should be visible in
                    # the resume log even though it is fully recovered.
                    self.torn_tails_skipped += 1
                    warnings.warn(
                        f"{self.path}:{lineno}: skipping torn trailing "
                        "record (crash mid-append?); the point will be "
                        "re-run on resume",
                        UserWarning,
                        stacklevel=3,
                    )
                    return
                raise ResultStoreError(
                    f"{self.path}:{lineno}: corrupt record ({exc})"
                ) from exc

    def spec(self) -> Optional[SweepSpec]:
        """The spec recorded in the header line, if any."""
        for record in self._lines():
            if record.get("type") == "spec":
                return SweepSpec.from_record(record["spec"])
            return None
        return None

    def records(self) -> List[Dict[str, object]]:
        """All result records, last-write-wins per point ID, stable order."""
        by_id: Dict[str, Dict[str, object]] = {}
        order: List[str] = []
        for record in self._lines():
            if record.get("type") != "result":
                continue
            pid = record.get("point_id")
            if pid not in by_id:
                order.append(pid)
            by_id[pid] = record
        return [by_id[pid] for pid in order]

    def completed_ids(self) -> Set[str]:
        """IDs of points whose latest record succeeded (resume skips these)."""
        return {
            r["point_id"] for r in self.records() if r.get("status") == "ok"
        }

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, record: Dict[str, object]) -> None:
        """Append one result record, flushed so crashes keep a valid prefix."""
        record = dict(record)
        record.setdefault("type", "result")
        if self._handle is None:
            self._discard_torn_tail()
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def _discard_torn_tail(self) -> None:
        """Drop a partially-written (crash-torn) final line before writing.

        Appending straight after a torn tail would merge the fragment with
        the new record, destroying both; truncating back to the last
        complete line loses only the write that already failed.
        """
        if not os.path.exists(self.path) or os.path.getsize(self.path) == 0:
            return
        with open(self.path, "r+b") as fh:
            data = fh.read()
            if data.endswith(b"\n"):
                return
            fh.truncate(data.rfind(b"\n") + 1)

    def close(self) -> None:
        """Close the append handle (reads reopen lazily)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ResultStore {self.path!r}>"
