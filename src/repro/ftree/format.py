"""Sparse tensor format descriptors in the TACO/SparseTensor-dialect style.

A format describes, per storage level, whether coordinates are stored densely
or compressed, plus the *mode order* (the permutation from logical tensor
modes to storage levels).  FuseFlow's fusion algorithm consumes exactly this
information: concordant traversal must follow each operand's mode order
(Section 5 of the paper).

Blocked formats add trailing dense *block* levels whose extents are the block
shape; the values array then holds dense blocks in the innermost positions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence, Tuple


class LevelKind(enum.Enum):
    """Storage kind of one tensor level."""

    DENSE = "dense"
    COMPRESSED = "compressed"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Format:
    """Per-level storage description of a tensor.

    Attributes
    ----------
    levels:
        One :class:`LevelKind` per storage level, outer to inner.
    mode_order:
        Permutation mapping storage level -> logical mode.  ``(0, 1)`` stores
        mode 0 outermost (row-major for matrices); ``(1, 0)`` stores mode 1
        outermost (column-major).
    block_shape:
        Extents of trailing dense block levels for blocked formats; empty for
        element-wise formats.
    """

    levels: Tuple[LevelKind, ...]
    mode_order: Tuple[int, ...] = ()
    block_shape: Tuple[int, ...] = ()

    def __post_init__(self) -> None:
        order = self.mode_order or tuple(range(len(self.levels)))
        object.__setattr__(self, "mode_order", order)
        if len(self.mode_order) != len(self.levels):
            raise ValueError(
                f"mode_order {self.mode_order} does not match "
                f"{len(self.levels)} levels"
            )
        if sorted(self.mode_order) != list(range(len(self.levels))):
            raise ValueError(f"mode_order {self.mode_order} is not a permutation")

    @property
    def order(self) -> int:
        """Number of logical tensor modes (excluding block levels)."""
        return len(self.levels)

    @property
    def is_blocked(self) -> bool:
        """True when the format carries trailing dense block levels."""
        return bool(self.block_shape)

    def level_for_mode(self, mode: int) -> int:
        """Return the storage level holding logical ``mode``."""
        return self.mode_order.index(mode)

    def name(self) -> str:
        """A short conventional name (CSR, DCSR, ...) when one applies."""
        kinds = self.levels
        if len(kinds) == 1:
            base = "dv" if kinds[0] is LevelKind.DENSE else "sv"
        elif len(kinds) == 2:
            table = {
                (LevelKind.DENSE, LevelKind.DENSE): "dense",
                (LevelKind.DENSE, LevelKind.COMPRESSED): "csr",
                (LevelKind.COMPRESSED, LevelKind.COMPRESSED): "dcsr",
                (LevelKind.COMPRESSED, LevelKind.DENSE): "cd",
            }
            base = table[(kinds[0], kinds[1])]
            if base == "csr" and self.mode_order == (1, 0):
                base = "csc"
        else:
            base = "-".join("d" if k is LevelKind.DENSE else "c" for k in kinds)
        if self.block_shape:
            base += "-b" + "x".join(str(b) for b in self.block_shape)
        return base

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name()


def dense(order: int) -> Format:
    """All-dense format of the given order."""
    return Format(tuple(LevelKind.DENSE for _ in range(order)))


def csr() -> Format:
    """Compressed sparse row: dense rows, compressed columns."""
    return Format((LevelKind.DENSE, LevelKind.COMPRESSED))


def csc() -> Format:
    """Compressed sparse column: dense columns outermost."""
    return Format((LevelKind.DENSE, LevelKind.COMPRESSED), mode_order=(1, 0))


def dcsr() -> Format:
    """Doubly compressed sparse row."""
    return Format((LevelKind.COMPRESSED, LevelKind.COMPRESSED))


def sparse_vector() -> Format:
    """Compressed 1-D format."""
    return Format((LevelKind.COMPRESSED,))


def dense_vector() -> Format:
    """Dense 1-D format."""
    return Format((LevelKind.DENSE,))


def blocked_csr(block_rows: int, block_cols: int) -> Format:
    """Block-sparse matrix: compressed outer block grid, dense inner blocks.

    Used for BigBird-style block-sparse attention masks (Section 8.7).
    """
    return Format(
        (LevelKind.DENSE, LevelKind.COMPRESSED),
        block_shape=(block_rows, block_cols),
    )


def from_spec(spec: str, mode_order: Sequence[int] | None = None) -> Format:
    """Parse a compact spec string like ``"dc"`` (CSR) or ``"cc"`` (DCSR)."""
    kinds = []
    for ch in spec:
        if ch == "d":
            kinds.append(LevelKind.DENSE)
        elif ch == "c":
            kinds.append(LevelKind.COMPRESSED)
        else:
            raise ValueError(f"unknown level spec {ch!r} in {spec!r}")
    order = tuple(mode_order) if mode_order is not None else ()
    return Format(tuple(kinds), mode_order=order)
