"""The :class:`SparseTensor` fibertree container.

``SparseTensor`` stores an n-order tensor as a chain of levels (dense or
compressed, per its :class:`~repro.ftree.format.Format`) plus a values array.
It supports construction from dense numpy arrays and scipy sparse matrices,
round-trip back to dense, permuted copies (higher-order transpose — the
cycle-breaking fallback of the fusion algorithm), and blocked storage where
values are dense blocks.

Storage always follows the format's ``mode_order``: storage level ``l`` holds
logical mode ``mode_order[l]``.  Coordinates inside the structure are storage
coordinates; :meth:`to_dense` maps them back to logical positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence, Tuple

import numpy as np

from .format import Format, LevelKind, dense as dense_format
from .levels import CompressedLevel, DenseLevel, Level


@dataclass
class SparseTensor:
    """An n-order tensor in fibertree form.

    Attributes
    ----------
    name:
        Optional identifier used in diagnostics and generated graphs.
    shape:
        Logical shape, one extent per mode (excluding block dims).
    fmt:
        Storage format (level kinds + mode order + optional block shape).
    levels:
        One level structure per storage level.
    values:
        Flat value array; for blocked formats an array of shape
        ``(num_positions, *block_shape)``.
    """

    name: str
    shape: Tuple[int, ...]
    fmt: Format
    levels: List[Level]
    values: np.ndarray

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dense(
        cls,
        array: np.ndarray,
        fmt: Format | None = None,
        name: str = "T",
    ) -> "SparseTensor":
        """Build a tensor from a dense numpy array.

        Zero entries are elided at compressed levels.  For blocked formats the
        array shape must be divisible by the block shape; a block is stored if
        it contains any nonzero.
        """
        array = np.asarray(array, dtype=np.float64)
        if fmt is None:
            fmt = dense_format(array.ndim)
        if fmt.is_blocked:
            return cls._from_dense_blocked(array, fmt, name)
        if array.ndim != fmt.order:
            raise ValueError(
                f"array of rank {array.ndim} does not match format order {fmt.order}"
            )
        # Permute the array so axis l is storage level l.
        storage = np.transpose(array, fmt.mode_order)
        levels: List[Level] = []
        # Positions at the current frontier, each a prefix coordinate tuple.
        prefixes: List[Tuple[int, ...]] = [()]
        for depth, kind in enumerate(fmt.levels):
            extent = storage.shape[depth]
            if kind is LevelKind.DENSE:
                levels.append(DenseLevel(extent))
                prefixes = [p + (c,) for p in prefixes for c in range(extent)]
            else:
                level = CompressedLevel(extent)
                new_prefixes: List[Tuple[int, ...]] = []
                for prefix in prefixes:
                    sub = storage[prefix]
                    # Coordinates along this axis with any nonzero below.
                    if sub.ndim == 0:
                        nz: Sequence[int] = []
                    else:
                        flat = sub.reshape(sub.shape[0], -1)
                        nz = np.nonzero(np.any(flat != 0.0, axis=1))[0].tolist()
                    level.append_fiber(nz)
                    new_prefixes.extend(prefix + (c,) for c in nz)
                levels.append(level)
                prefixes = new_prefixes
        vals = np.array([storage[p] for p in prefixes], dtype=np.float64)
        return cls(name=name, shape=array.shape, fmt=fmt, levels=levels, values=vals)

    @classmethod
    def _from_dense_blocked(
        cls, array: np.ndarray, fmt: Format, name: str
    ) -> "SparseTensor":
        """Build a blocked tensor: outer levels index a grid of dense blocks."""
        block = fmt.block_shape
        if array.ndim != fmt.order:
            raise ValueError(
                f"blocked formats expect rank {fmt.order} arrays, got {array.ndim}"
            )
        if len(block) != array.ndim:
            raise ValueError("block shape must cover every mode")
        for extent, b in zip(array.shape, block):
            if extent % b != 0:
                raise ValueError(f"extent {extent} not divisible by block {b}")
        grid_shape = tuple(e // b for e, b in zip(array.shape, block))
        # Reshape to (g0, b0, g1, b1, ...) then to (g0, g1, ..., b0, b1, ...).
        interleaved_shape: List[int] = []
        for g, b in zip(grid_shape, block):
            interleaved_shape.extend((g, b))
        grid = array.reshape(interleaved_shape)
        n = array.ndim
        perm = [2 * i for i in range(n)] + [2 * i + 1 for i in range(n)]
        grid = np.transpose(grid, perm)
        # Collapse the block dims into value payloads and recurse as unblocked.
        outer_fmt = Format(fmt.levels, fmt.mode_order)
        storage = np.transpose(grid, list(outer_fmt.mode_order) + list(range(n, 2 * n)))
        levels: List[Level] = []
        prefixes: List[Tuple[int, ...]] = [()]
        for depth, kind in enumerate(outer_fmt.levels):
            extent = storage.shape[depth]
            if kind is LevelKind.DENSE:
                levels.append(DenseLevel(extent))
                prefixes = [p + (c,) for p in prefixes for c in range(extent)]
            else:
                level = CompressedLevel(extent)
                new_prefixes = []
                for prefix in prefixes:
                    sub = storage[prefix]
                    flat = sub.reshape(sub.shape[0], -1)
                    nz = np.nonzero(np.any(flat != 0.0, axis=1))[0].tolist()
                    level.append_fiber(nz)
                    new_prefixes.extend(prefix + (c,) for c in nz)
                levels.append(level)
                prefixes = new_prefixes
        vals = np.array([storage[p] for p in prefixes], dtype=np.float64)
        if vals.size == 0:
            vals = vals.reshape((0,) + block)
        return cls(name=name, shape=array.shape, fmt=fmt, levels=levels, values=vals)

    @classmethod
    def from_scipy(cls, matrix, fmt: Format | None = None, name: str = "T") -> "SparseTensor":
        """Build from a scipy sparse matrix (via dense; fine at repo scale)."""
        return cls.from_dense(np.asarray(matrix.todense()), fmt=fmt, name=name)

    @classmethod
    def from_coords(
        cls,
        shape: Sequence[int],
        fmt: Format,
        coords: dict,
        name: str = "T",
    ) -> "SparseTensor":
        """Build a tensor from a ``{storage-order path: value}`` mapping.

        Used by tensor writers assembling graph outputs from streams.  Paths
        are coordinate tuples in *storage* order (outer level first).  Dense
        levels are filled with implicit zeros/zero blocks where no value is
        stored.
        """
        shape = tuple(shape)
        if fmt.is_blocked:
            storage_shape = tuple(
                shape[m] // fmt.block_shape[m] for m in fmt.mode_order
            )
        else:
            storage_shape = tuple(shape[m] for m in fmt.mode_order)
        paths = sorted(coords)
        levels: List[Level] = []
        groups: List[List[Tuple[int, ...]]] = [paths]
        for depth, kind in enumerate(fmt.levels):
            extent = storage_shape[depth]
            new_groups: List[List[Tuple[int, ...]]] = []
            if kind is LevelKind.DENSE:
                levels.append(DenseLevel(extent))
                for group in groups:
                    by_coord: dict = {}
                    for p in group:
                        by_coord.setdefault(p[depth], []).append(p)
                    for c in range(extent):
                        new_groups.append(by_coord.get(c, []))
            else:
                level = CompressedLevel(extent)
                for group in groups:
                    by_coord = {}
                    for p in group:
                        by_coord.setdefault(p[depth], []).append(p)
                    fiber_coords = sorted(by_coord)
                    level.append_fiber(fiber_coords)
                    new_groups.extend(by_coord[c] for c in fiber_coords)
                levels.append(level)
            groups = new_groups
        zero: Any = (
            np.zeros(fmt.block_shape, dtype=np.float64) if fmt.is_blocked else 0.0
        )
        vals = []
        for group in groups:
            if len(group) > 1:
                raise ValueError(f"duplicate coordinate path {group[0]}")
            vals.append(coords[group[0]] if group else zero)
        if fmt.is_blocked:
            values = (
                np.stack([np.asarray(v, dtype=np.float64) for v in vals])
                if vals
                else np.zeros((0,) + fmt.block_shape)
            )
        else:
            values = np.array(vals, dtype=np.float64)
        return cls(name=name, shape=shape, fmt=fmt, levels=levels, values=values)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def order(self) -> int:
        """Number of logical modes."""
        return len(self.shape)

    @property
    def block_shape(self) -> Tuple[int, ...]:
        return self.fmt.block_shape

    def num_positions(self, depth: int) -> int:
        """Number of positions entering storage level ``depth``."""
        count = 1
        for level in self.levels[:depth]:
            count = level.num_children(count)
        return count

    def nnz(self) -> int:
        """Number of stored values (blocks count once)."""
        return int(self.values.shape[0]) if self.values.ndim > 0 else 1

    def density(self) -> float:
        """Stored fraction of the logical value space."""
        total = float(np.prod(self.shape)) or 1.0
        stored = float(self.values.size)
        return stored / total

    def bytes_values(self) -> int:
        """Bytes of value storage."""
        return int(self.values.size * 8)

    def bytes_structure(self) -> int:
        """Bytes of pos/crd structure storage (4 bytes per entry)."""
        total = 0
        for level in self.levels:
            if isinstance(level, CompressedLevel):
                total += 4 * (len(level.pos) + len(level.crd))
        return total

    def bytes_total(self) -> int:
        return self.bytes_values() + self.bytes_structure()

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_dense(self) -> np.ndarray:
        """Materialize the logical dense array (blocks re-expanded)."""
        if self.fmt.is_blocked:
            return self._to_dense_blocked()
        storage_shape = tuple(self.shape[m] for m in self.fmt.mode_order)
        out = np.zeros(storage_shape, dtype=np.float64)
        coords = self._all_coords()
        for pos, coord in enumerate(coords):
            out[coord] = self.values[pos]
        inverse = np.argsort(self.fmt.mode_order)
        return np.transpose(out, inverse)

    def _to_dense_blocked(self) -> np.ndarray:
        block = self.fmt.block_shape
        grid_shape = tuple(e // b for e, b in zip(self.shape, block))
        storage_grid = tuple(grid_shape[m] for m in self.fmt.mode_order)
        out = np.zeros(storage_grid + block, dtype=np.float64)
        for pos, coord in enumerate(self._all_coords()):
            out[coord] = self.values[pos]
        n = len(self.shape)
        inverse = list(np.argsort(self.fmt.mode_order)) + list(range(n, 2 * n))
        out = np.transpose(out, inverse)
        # (g0, g1, ..., b0, b1, ...) -> (g0, b0, g1, b1, ...) -> dense.
        perm = []
        for i in range(n):
            perm.extend((i, n + i))
        out = np.transpose(out, perm)
        return out.reshape(self.shape)

    def _all_coords(self) -> List[Tuple[int, ...]]:
        """Enumerate storage coordinates of every stored value, in order."""
        prefixes: List[Tuple[int, ...]] = [()]
        positions: List[int] = [0]
        for level in self.levels:
            new_prefixes: List[Tuple[int, ...]] = []
            new_positions: List[int] = []
            for prefix, pos in zip(prefixes, positions):
                coords, children = level.fiber(pos)
                for c, child in zip(coords, children):
                    new_prefixes.append(prefix + (c,))
                    new_positions.append(child)
            prefixes, positions = new_prefixes, new_positions
        return prefixes

    def permuted_copy(self, new_mode_order: Sequence[int], name: str | None = None) -> "SparseTensor":
        """Materialize a copy stored under a different mode order.

        This is the "higher-order transpose" the fusion algorithm inserts to
        break POG cycles (Section 5, step 4).
        """
        fmt = Format(self.fmt.levels, tuple(new_mode_order), self.fmt.block_shape)
        return SparseTensor.from_dense(
            self.to_dense(), fmt=fmt, name=name or f"{self.name}_perm"
        )

    def with_name(self, name: str) -> "SparseTensor":
        """Return self relabeled (shallow; shares storage)."""
        return SparseTensor(name, self.shape, self.fmt, self.levels, self.values)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SparseTensor({self.name!r}, shape={self.shape}, fmt={self.fmt.name()}, "
            f"nnz={self.nnz()})"
        )


def tensor(array: np.ndarray, fmt: Format | None = None, name: str = "T") -> SparseTensor:
    """Convenience alias for :meth:`SparseTensor.from_dense`."""
    return SparseTensor.from_dense(np.asarray(array), fmt=fmt, name=name)
