"""Fibertree sparse-tensor substrate (formats, levels, tensors)."""

from .format import (
    Format,
    LevelKind,
    blocked_csr,
    csc,
    csr,
    dcsr,
    dense,
    dense_vector,
    from_spec,
    sparse_vector,
)
from .levels import CompressedLevel, DenseLevel, Level
from .tensor import SparseTensor, tensor

__all__ = [
    "Format",
    "LevelKind",
    "SparseTensor",
    "CompressedLevel",
    "DenseLevel",
    "Level",
    "tensor",
    "dense",
    "csr",
    "csc",
    "dcsr",
    "sparse_vector",
    "dense_vector",
    "blocked_csr",
    "from_spec",
]
