"""Fibertree level structures.

A tensor of order *n* is stored as *n* nested levels (fibers of fibers) plus a
values array — the fibertree representation used by SAM and by sparse tensor
compilers in the TACO lineage.  Each level maps a parent position to the
coordinates and child positions of one fiber.

Two level kinds are supported:

``DenseLevel``
    A fiber at position ``p`` implicitly holds coordinates ``0..N-1`` with
    child positions ``p*N .. p*N+N-1``.
``CompressedLevel``
    CSR-style ``pos``/``crd`` arrays: fiber ``p`` holds the coordinates
    ``crd[pos[p]:pos[p+1]]`` with child positions equal to the crd indices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Sequence, Tuple

import numpy as np


@dataclass
class DenseLevel:
    """Implicit dense level of extent ``size``."""

    size: int

    @property
    def kind(self) -> str:
        return "dense"

    def num_children(self, num_parents: int) -> int:
        """Number of positions exposed to the next level."""
        return num_parents * self.size

    def fiber(self, pos: int) -> Tuple[Sequence[int], Sequence[int]]:
        """Return (coords, child positions) of the fiber at ``pos``."""
        base = pos * self.size
        coords = range(self.size)
        children = range(base, base + self.size)
        return coords, children

    def append_fiber(self, coords: Sequence[int]) -> None:  # pragma: no cover
        raise TypeError("dense levels are implicit; cannot append fibers")


@dataclass
class CompressedLevel:
    """Compressed level with explicit ``pos``/``crd`` arrays."""

    size: int
    pos: List[int] = field(default_factory=lambda: [0])
    crd: List[int] = field(default_factory=list)

    @property
    def kind(self) -> str:
        return "compressed"

    def num_children(self, num_parents: int) -> int:
        return len(self.crd)

    def fiber(self, pos: int) -> Tuple[Sequence[int], Sequence[int]]:
        """Return (coords, child positions) of the fiber at ``pos``."""
        start, end = self.pos[pos], self.pos[pos + 1]
        return self.crd[start:end], range(start, end)

    def append_fiber(self, coords: Sequence[int]) -> None:
        """Append one fiber's coordinates (used by level writers)."""
        self.crd.extend(coords)
        self.pos.append(len(self.crd))

    def nnz(self) -> int:
        """Total number of stored coordinates across all fibers."""
        return len(self.crd)


Level = DenseLevel | CompressedLevel


def iter_fibers(level: Level, num_parents: int) -> Iterator[Tuple[int, Sequence[int], Sequence[int]]]:
    """Yield ``(parent_pos, coords, child_positions)`` for each fiber."""
    for p in range(num_parents):
        coords, children = level.fiber(p)
        yield p, coords, children
