"""Command-line scheduling interface (paper Section 7).

FuseFlow exposes its optimization knobs through a CLI: users pick a model
and any of the six schedule axes — fusion granularity, dataflow ordering,
parallelization, index splitting, mask folding, and the global-iteration
rewrite — and the tool compiles, simulates, and reports
cycles/FLOPs/bytes.  Beyond single runs there are three search entry
points: ``estimate`` ranks schedules with the analytical heuristic,
``autotune`` enumerates and simulates the fusion × split space, and
``tune`` runs guided search (``beam``/``evolutionary``/``exhaustive``
strategies) over the joint space under a simulation budget, optionally
guided by a cost model calibrated from recorded sweeps.  All compilation
goes through one driver :class:`~repro.driver.Session` per invocation, so
sweeps, autotuning, and search steps reuse compiled executables instead
of re-lowering.

Examples::

    fuseflow run --model gcn --fusion partial
    fuseflow run --model gpt3 --fusion full --block 8 --par x1=4
    fuseflow run --model gcn --fusion unfused --hierarchy fpga-small --split x1=8
    fuseflow simulate --model gcn --fusion partial --profile --top 8
    fuseflow simulate --model gcn --fusion unfused --hierarchy fpga-small
    fuseflow sweep run --models gpt3 --hierarchies fpga-small \
        --splits none --splits x16=8
    fuseflow sweep quick --model graphsage
    fuseflow sweep run --models gcn,sae --machines rda,fpga --out sweep.jsonl
    fuseflow sweep run --models gcn,gpt3 --hierarchies flat,fpga-small,asic-large
    fuseflow sweep resume --out sweep.jsonl
    fuseflow sweep report --out sweep.jsonl --json report.json
    fuseflow estimate --model gcn
    fuseflow autotune --model sae --nodes 16
    fuseflow autotune --model gcn --hierarchy fpga-small --split x1=4 --split x1=8
    fuseflow tune --model gcn --strategy beam --budget 6 --seed 0
    fuseflow tune --model gpt3 --strategy evolutionary --budget 4 \
        --calibrate sweep.jsonl --cost-model gpt3-costmodel.json
    fuseflow compile --model sae --fusion full --show-graph --diagnostics
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

import numpy as np

from .backend import BACKEND_NAMES
from .comal.hierarchy import HIERARCHIES, resolve_hierarchy
from .comal.machines import MACHINES
from .core.heuristic.model import stats_from_binding
from .core.heuristic.prune import rank_schedules
from .core.schedule.autotune import autotune
from .core.schedule.search import STRATEGIES as SEARCH_STRATEGIES
from .driver import Session
from .models.common import VERIFY_TOLERANCE, ModelBundle
from .models.gcn import gcn_on_synthetic
from .models.gpt3 import build_gpt3
from .models.graphsage import graphsage_on_synthetic
from .models.sae import build_sae
from .sweep import (
    ResultStore,
    SweepSpec,
    render_summary,
    run_sweep,
    summarize,
    sweep_schedules,
    write_bench_json,
    write_summary_json,
)


def _build_model(args) -> ModelBundle:
    if args.model == "gcn":
        return gcn_on_synthetic(nodes=args.nodes, density=args.density)
    if args.model == "graphsage":
        return graphsage_on_synthetic(nodes=args.nodes, density=args.density)
    if args.model == "sae":
        rng = np.random.default_rng(0)
        return build_sae(rng.random((5, args.nodes)), hidden=args.nodes // 2)
    if args.model == "gpt3":
        return build_gpt3(
            seq_len=args.seq_len, d_model=args.d_model, block=args.block
        )
    raise SystemExit(f"unknown model {args.model!r}")


def _session(args) -> Session:
    return Session(
        machine=MACHINES[args.machine],
        hierarchy=_hierarchy_arg(args),
        backend=getattr(args, "backend", None),
        disk_cache=getattr(args, "cache_dir", None),
    )


def _hierarchy_arg(args):
    """Validate the --hierarchy flag early, with a CLI-friendly error."""
    value = getattr(args, "hierarchy", None)
    if value is None:
        return None
    try:
        resolve_hierarchy(value)
    except ValueError as exc:
        raise SystemExit(str(exc))
    return value


def _parse_par(specs: List[str]) -> Dict[str, int]:
    par: Dict[str, int] = {}
    for spec in specs or []:
        if "=" not in spec:
            raise SystemExit(f"--par expects index=factor, got {spec!r}")
        idx, factor = spec.split("=", 1)
        par[idx] = int(factor)
    return par


def _parse_split_config(text: str) -> Dict[str, int]:
    """Parse one split configuration: ``"i=8"`` or ``"i=8,j=4"`` or ``"none"``."""
    if text.strip().lower() in ("", "none"):
        return {}
    splits: Dict[str, int] = {}
    for part in text.split(","):
        part = part.strip()
        if "=" not in part:
            raise SystemExit(f"--split expects index=tiles, got {part!r}")
        idx, tiles = part.split("=", 1)
        idx = idx.strip()
        if not idx:
            raise SystemExit(f"--split expects index=tiles, got {part!r}")
        try:
            count = int(tiles)
        except ValueError:
            raise SystemExit(f"--split tile count must be an int, got {tiles!r}")
        if count < 1:
            raise SystemExit(f"--split tile count must be >= 1, got {count}")
        splits[idx] = count
    return splits


def _parse_splits(specs: List[str]) -> Dict[str, int]:
    """Merge repeated ``--split`` flags into one schedule splits dict."""
    merged: Dict[str, int] = {}
    for spec in specs or []:
        merged.update(_parse_split_config(spec))
    return merged


def _add_model_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--model", required=True, choices=["gcn", "graphsage", "sae", "gpt3"]
    )
    parser.add_argument("--nodes", type=int, default=120, help="graph nodes / SAE dim")
    parser.add_argument("--density", type=float, default=0.04, help="graph density")
    parser.add_argument("--seq-len", type=int, default=32, help="GPT-3 sequence length")
    parser.add_argument("--d-model", type=int, default=8, help="GPT-3 model width")
    parser.add_argument("--block", type=int, default=8, help="GPT-3 attention block size")
    parser.add_argument(
        "--machine", default="rda", choices=sorted(MACHINES), help="timing model"
    )
    parser.add_argument(
        "--hierarchy",
        default=None,
        help=(
            "memory hierarchy preset: "
            + ", ".join(sorted(HIERARCHIES))
            + "; append @bytes to override the SRAM capacity "
            "(e.g. fpga-small@16384)"
        ),
    )
    parser.add_argument(
        "--backend",
        default=None,
        choices=list(BACKEND_NAMES),
        help=(
            "execution backend: 'columnar' (vectorized interpreter, the "
            "default), 'interp' (legacy tuple-list interpreter), or "
            "'codegen' (per-region compiled kernels; bit-exact, faster "
            "on deep regions).  Default follows FUSEFLOW_BACKEND."
        ),
    )
    parser.add_argument(
        "--split",
        action="append",
        metavar="INDEX=TILES",
        help=(
            "index splitting (tiling): iterate INDEX in TILES sequential "
            "tiles, e.g. --split x1=8 or --split x1=8,x7=8; repeatable "
            "(merged into one schedule — sweep quick applies it to every "
            "granularity; for autotune each flag is one candidate "
            "configuration co-optimized against fusion; estimate's "
            "analytical heuristic ignores it)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help=(
            "persistent compile-cache directory: compiles are served from "
            "it when warm and written back when cold (default follows "
            "FUSEFLOW_CACHE_DIR; unset = in-memory cache only)"
        ),
    )


def cmd_run(args) -> int:
    bundle = _build_model(args)
    schedule = bundle.schedule(args.fusion)
    schedule.par = _parse_par(args.par)
    schedule.splits = _parse_splits(args.split)
    session = _session(args)
    exe = session.compile(bundle.program, schedule)
    result = exe(bundle.binding)
    err = bundle.max_abs_err(result)
    m = result.metrics
    print(f"model      : {bundle.name}")
    print(f"schedule   : {schedule.name} ({len(schedule.regions)} regions)")
    print(f"cycles     : {m.cycles:.0f}")
    print(f"flops      : {m.flops}")
    print(f"dram bytes : {m.dram_bytes}")
    if m.sram_bytes or m.spill_bytes or m.fill_bytes:
        print(f"sram bytes : {m.sram_bytes}")
        print(f"spill/fill : {m.spill_bytes} / {m.fill_bytes}")
    print(f"op intensity: {m.operational_intensity():.3f} flops/byte")
    print(f"max |err|  : {err:.3e} (vs dense reference)")
    return 0 if err < VERIFY_TOLERANCE else 1


def cmd_simulate(args) -> int:
    """Simulate one schedule; ``--profile`` prints the busiest nodes."""
    bundle = _build_model(args)
    schedule = bundle.schedule(args.fusion)
    schedule.par = _parse_par(args.par)
    schedule.splits = _parse_splits(args.split)
    session = Session(
        machine=MACHINES[args.machine],
        columnar=False if args.legacy_streams else None,
        debug_streams=True if args.debug_streams else None,
        sim_cache=False if args.no_sim_cache else None,
        hierarchy=_hierarchy_arg(args),
        backend=args.backend,
        disk_cache=getattr(args, "cache_dir", None),
    )
    exe = session.compile(bundle.program, schedule)
    result = exe(bundle.binding)
    m = result.metrics
    print(f"model      : {bundle.name}")
    print(f"schedule   : {schedule.name} ({len(schedule.regions)} regions)")
    print(f"machine    : {args.machine}")
    print(f"backend    : {exe.diagnostics.backend}")
    print(f"hierarchy  : {session.machine.hierarchy.describe()}")
    print(f"cycles     : {m.cycles:.0f}")
    print(f"flops      : {m.flops}")
    print(f"dram bytes : {m.dram_bytes}")
    print(f"sram bytes : {m.sram_bytes}")
    print(f"spill/fill : {m.spill_bytes} / {m.fill_bytes}")
    print(f"tokens     : {m.tokens}")
    if args.profile:
        rows = []
        for region, sim in zip(exe.regions, result.region_results):
            graph = region.graph
            for node_id, busy in sim.node_busy.items():
                node = graph.nodes[node_id]
                rows.append(
                    (
                        busy,
                        sim.node_finish.get(node_id, 0.0),
                        graph.name,
                        node_id,
                        node.prim.describe(),
                    )
                )
        rows.sort(key=lambda r: r[0], reverse=True)
        total = max(m.cycles, 1e-9)
        print()
        print(f"top {args.top} busiest nodes (of {len(rows)}):")
        print(f"{'busy':>10s} {'finish':>10s} {'util%':>6s}  node")
        for busy, finish, gname, node_id, desc in rows[: args.top]:
            print(
                f"{busy:10.1f} {finish:10.1f} {100 * busy / total:6.1f}  "
                f"{gname}/{node_id} ({desc})"
            )
        print()
        print("memory traffic per region (bytes):")
        print(f"{'region':24s} {'dram':>10s} {'sram':>10s} {'spill':>9s} {'fill':>9s}")
        for region, sim in zip(exe.regions, result.region_results):
            print(
                f"{region.graph.name:24s} {sim.dram_bytes:10d} "
                f"{sim.sram_bytes:10d} {sim.spill_bytes:9d} {sim.fill_bytes:9d}"
            )
        levels = m.traffic_by_level()
        print(
            f"{'total':24s} {levels['dram']:10d} {levels['sram']:10d} "
            f"{levels['spill']:9d} {levels['fill']:9d}"
        )
        if exe.diagnostics.backend == "codegen":
            from .backend import codegen_cache_info
            from .backend.codegen import cached_artifacts

            print()
            print("codegen backend per region (emit cost vs amortization):")
            print(
                f"{'region':24s} {'tier':>8s} {'LoC':>6s} {'emit':>10s} "
                f"{'runs':>5s} {'run ms':>8s} {'emit/run':>9s}  status"
            )
            diags = {diag.name: diag for diag in exe.diagnostics.regions}
            for region in exe.regions:
                if region.graph is None:
                    continue
                diag = diags.get(region.graph.name)
                fallback = diag.codegen_fallback if diag else ""
                # One row per emitted tier: with adaptive dispatch a
                # region's runs can land on the token tier even though
                # the columnar tier was emitted (blocked/short streams).
                arts = cached_artifacts(region.graph)
                for tier in sorted(arts):
                    art = arts[tier]
                    if art.fn is None and not fallback:
                        continue
                    emit_ms = (art.emit_seconds + art.compile_seconds) * 1e3
                    if art.runs:
                        run_ms = art.run_seconds * 1e3 / art.runs
                        amort = f"{emit_ms / art.runs:7.2f}ms"
                        status = (
                            "amortized" if emit_ms < art.run_seconds * 1e3
                            else "paying off"
                        )
                        run_col = f"{run_ms:8.3f}"
                    else:
                        amort = f"{'-':>9s}"
                        run_col = f"{'-':>8s}"
                        status = "unused tier"
                    if fallback:
                        status = f"fallback: {fallback}"
                    elif art.code_cached:
                        status += ", cached code"
                    print(
                        f"{region.graph.name:24s} {tier:>8s} {art.loc:6d} "
                        f"{emit_ms:8.2f}ms {art.runs:5d} {run_col} "
                        f"{amort}  {status}"
                    )
            info = codegen_cache_info()
            print(
                f"artifact cache: {info['artifact_hits']} hit(s), "
                f"{info['artifact_misses']} miss(es); source cache: "
                f"{info['code_hits']} hit(s), {info['code_misses']} "
                f"miss(es); {info['fallbacks']} region fallback(s); "
                f"{info['token_dispatches']} adaptive token dispatch(es)"
            )
    return 0


def cmd_sweep_quick(args) -> int:
    """Single-model fusion-granularity comparison (the original sweep).

    One point per granularity (unfused/partial/full); any ``--split``
    flags apply to every granularity rather than forming a grid axis.
    For the full seven-axis grid (model × dataset × schedule × machine ×
    hierarchy × splits × backend) use ``sweep run``; for guided search
    over the six schedule knobs — fusion granularity, dataflow order,
    parallelization, index splitting, mask folding, global rewrite —
    under a simulation budget, use ``tune``.
    """
    bundle = _build_model(args)
    session = _session(args)
    schedules = bundle.schedules(("unfused", "partial", "full"))
    splits = _parse_splits(args.split)
    for schedule in schedules:
        schedule.splits = dict(splits)
    runs = sweep_schedules(
        session,
        bundle.program,
        bundle.binding,
        schedules,
    )
    baseline = runs[0].cycles if runs else 1.0
    print(f"{'granularity':12s} {'cycles':>12s} {'speedup':>8s} {'flops':>12s} {'bytes':>12s}")
    for gran, run in zip(("unfused", "partial", "full"), runs):
        m = run.result.metrics
        print(
            f"{gran:12s} {m.cycles:12.0f} {baseline / m.cycles:8.2f} "
            f"{m.flops:12d} {m.dram_bytes:12d}"
        )
    return 0


def _split_csv(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _sweep_spec_from_args(args) -> SweepSpec:
    if args.spec:
        return SweepSpec.load(args.spec)
    model_args: Dict[str, object] = {}
    for key in ("nodes", "density", "hidden", "seq_len", "d_model", "block", "seed"):
        value = getattr(args, key, None)
        if value is not None:
            model_args[key] = value
    pipelines = None
    if args.pipeline:
        pipelines = [_split_csv(spec) for spec in args.pipeline]
    splits_axis = None
    if getattr(args, "splits", None):
        splits_axis = [_parse_split_config(spec) for spec in args.splits]
    backends_axis = None
    if getattr(args, "backends", None):
        # "default" names the session-default baseline (the empty string
        # internally, which CSV parsing would otherwise drop).
        backends_axis = [
            "" if name == "default" else name
            for name in _split_csv(args.backends)
        ]
    return SweepSpec(
        name=args.name,
        models=_split_csv(args.models),
        datasets=_split_csv(args.datasets) if args.datasets else None,
        schedules=_split_csv(args.schedules),
        machines=_split_csv(args.machines),
        hierarchies=_split_csv(args.hierarchies) if args.hierarchies else None,
        pipelines=pipelines,
        model_args=model_args,
        par=_parse_par(args.par),
        splits=splits_axis,
        backends=backends_axis,
        baseline_schedule=args.baseline,
    )


def _sweep_progress():
    state = {"done": 0}

    def report(record: Dict[str, object]) -> None:
        state["done"] += 1
        status = record.get("status")
        if status == "ok":
            detail = f"{record['metrics']['cycles']:.0f} cycles"
        else:
            detail = record.get("error", "unknown error")
        print(f"[{state['done']}] {status:5s} {record['label']}: {detail}")

    return report


def cmd_sweep_run(args, resume: bool = False) -> int:
    if resume and args.out is None:
        raise SystemExit("sweep resume needs --out pointing at a results file")
    # On resume no spec is passed: the store header is the spec (a spec
    # passed alongside resume would be fingerprint-checked, and the CLI
    # flags default-construct one that would spuriously mismatch).
    spec = None if resume else _sweep_spec_from_args(args)
    try:
        outcome = run_sweep(
            spec,
            store_path=args.out,
            workers=args.workers,
            resume=resume,
            force=getattr(args, "force", False),
            progress=None if args.quiet else _sweep_progress(),
            cache_dir=getattr(args, "cache_dir", None),
            point_timeout=getattr(args, "point_timeout", None),
            max_attempts=getattr(args, "max_attempts", None),
        )
    except Exception as exc:
        raise SystemExit(f"sweep failed: {exc}")
    print(outcome.describe())
    # Summarize everything known for this sweep: the store when persisted
    # (covers resumed points), else just this run's records.
    if args.out:
        store = ResultStore.open(args.out)
        records = store.records()
        spec = store.spec() or spec
    else:
        records = outcome.records
    summary = summarize(records, spec.baseline_schedule, spec.name)
    print()
    print(render_summary(summary))
    return 1 if outcome.failed else 0


def cmd_sweep_resume(args) -> int:
    return cmd_sweep_run(args, resume=True)


def cmd_sweep_report(args) -> int:
    try:
        store = ResultStore.open(args.out)
        spec = store.spec()
    except Exception as exc:
        raise SystemExit(str(exc))
    if spec is None:
        raise SystemExit(
            f"{args.out!r} has no spec header; not a sweep results file?"
        )
    baseline = args.baseline or spec.baseline_schedule
    summary = summarize(store.records(), baseline, spec.name)
    print(render_summary(summary))
    if args.json:
        write_summary_json(summary, args.json)
        print(f"\nwrote JSON summary to {args.json}")
    if args.bench_json:
        path = write_bench_json(
            summary, None if args.bench_json == "auto" else args.bench_json
        )
        print(f"wrote BENCH payload to {path}")
    return 1 if summary["points_failed"] else 0


def cmd_estimate(args) -> int:
    bundle = _build_model(args)
    if args.split:
        print(
            "note: the analytical heuristic does not model index splitting; "
            "--split is ignored by `estimate` (use `run`/`simulate` to "
            "measure a tiled schedule)",
            file=sys.stderr,
        )
    stats = stats_from_binding(bundle.binding)
    schedules = bundle.schedules()
    # The heuristic sees the hierarchy through the machine's (pinned)
    # operand budget; it does not model intermediate placement.
    machine = MACHINES[args.machine]
    hierarchy = _hierarchy_arg(args)
    if hierarchy is not None:
        machine = machine.with_hierarchy(hierarchy)
    ranked = rank_schedules(bundle.program, schedules, stats, machine)
    print(f"{'rank':>4s} {'schedule':14s} {'est cycles':>12s} {'est flops':>14s} {'est bytes':>14s}")
    for i, entry in enumerate(ranked):
        print(
            f"{i + 1:4d} {entry.schedule.name:14s} {entry.score:12.0f} "
            f"{entry.estimate.flops:14.0f} {entry.estimate.dram_bytes:14.0f}"
        )
    return 0


def cmd_autotune(args) -> int:
    bundle = _build_model(args)
    session = _session(args)
    stats = stats_from_binding(bundle.binding)
    # Each --split flag is one candidate split configuration; the unsplit
    # baseline is always enumerated first, so the tuner co-optimizes
    # tiling against fusion granularity.
    split_axis = [_parse_split_config(s) for s in args.split or []]
    try:
        tuned = autotune(
            bundle.program,
            bundle.binding,
            stats,
            session=session,
            simulate_top=args.simulate_top,
            max_candidates=args.max_candidates,
            splits=split_axis or None,
        )
    except RuntimeError as exc:
        print(f"autotune failed: {exc}", file=sys.stderr)
        return 1
    print(f"model      : {bundle.name}")
    print(f"considered : {tuned.candidates_considered} candidate(s), "
          f"simulated {tuned.candidates_simulated}")
    if tuned.partitions_dropped:
        print(f"truncated  : {tuned.partitions_dropped} of "
              f"{tuned.partition_space} contiguous partitions dropped by "
              f"--max-candidates {args.max_candidates} (kept subset is "
              "deterministic, taken from both granularity ends; the "
              "fully-fused and fully-unfused baselines always survive)")
    for name, cycles in tuned.ranking:
        marker = " <- best" if name == tuned.best.name else ""
        print(f"  {name:20s} {cycles:12.0f} cycles{marker}")
    print(f"winner     : {tuned.best.name} at {tuned.measured_cycles:.0f} cycles")
    before = session.cache_info()
    exe = session.compile(bundle.program, tuned.best)
    after = session.cache_info()
    served = "cache hit" if after.hits > before.hits else "cache miss"
    print(f"cache      : {after} (winner recompile: {served})")
    if args.verify:
        err = bundle.max_abs_err(exe(bundle.binding))
        print(f"max |err|  : {err:.3e} (vs dense reference)")
        return 0 if err < VERIFY_TOLERANCE else 1
    return 0


def cmd_tune(args) -> int:
    """Guided search over the joint schedule space (see docs/scheduling.md).

    ``--strategy`` picks a registered search strategy; ``--budget`` caps
    successful simulations; ``--seed`` makes stochastic strategies
    reproducible (identical invocations print identical traces).  A cost
    model calibrated from recorded sweeps steers the search:
    ``--calibrate`` fits one from a results file / spec and ``--cost-model``
    loads (or, combined with ``--calibrate``, saves) the JSON artifact.
    """
    from .core.heuristic.costmodel import CalibratedCostModel

    bundle = _build_model(args)
    session = _session(args)
    stats = stats_from_binding(bundle.binding)
    split_axis = [_parse_split_config(s) for s in args.split or []]
    # Each --par flag is one candidate parallelization configuration.
    par_axis = [_parse_par([p]) for p in args.par or []]
    cost_model = None
    if args.calibrate:
        try:
            cost_model = CalibratedCostModel().fit_from_store(args.calibrate)
        except Exception as exc:
            raise SystemExit(f"calibration failed: {exc}")
        terms = cost_model.terms.get(args.model) or cost_model.terms.get("*")
        if terms is not None:
            print(f"calibrated : {terms.records} record(s) from "
                  f"{args.calibrate} (rmse {terms.rmse:.3f} vs raw "
                  f"{terms.raw_rmse:.3f}, log-cycles)")
        if args.cost_model:
            cost_model.save(args.cost_model)
            print(f"cost model : written to {args.cost_model}")
    elif args.cost_model:
        try:
            cost_model = CalibratedCostModel.load(args.cost_model)
        except Exception as exc:
            raise SystemExit(f"loading cost model failed: {exc}")
        print(f"cost model : loaded from {args.cost_model}")
    try:
        tuned = autotune(
            bundle.program,
            bundle.binding,
            stats,
            session=session,
            strategy=args.strategy,
            budget=args.budget,
            seed=args.seed,
            cost_model=cost_model,
            model_name=args.model,
            max_candidates=args.max_candidates,
            splits=split_axis or None,
            par_options=par_axis or None,
        )
    except (RuntimeError, KeyError) as exc:
        print(f"tune failed: {exc}", file=sys.stderr)
        return 1
    print(f"model      : {bundle.name}")
    print(f"strategy   : {tuned.strategy} (seed {args.seed})")
    if tuned.search_trace:
        print(f"backend    : {tuned.search_trace[0]['backend']} "
              f"(simulation backend; recorded per trace step)")
    print(f"evaluated  : {tuned.evaluations} simulation(s) of "
          f"{tuned.candidates_considered} candidate point(s) "
          f"(budget {args.budget})")
    for name, cycles in tuned.ranking:
        marker = " <- best" if name == tuned.best.name else ""
        print(f"  {name:28s} {cycles:12.0f} cycles{marker}")
    print(f"winner     : {tuned.best.name} at {tuned.measured_cycles:.0f} cycles")
    before = session.cache_info()
    exe = session.compile(bundle.program, tuned.best)
    after = session.cache_info()
    served = "cache hit" if after.hits > before.hits else "cache miss"
    print(f"cache      : {after} (winner recompile: {served})")
    if args.trace_out:
        import json as _json

        with open(args.trace_out, "w", encoding="utf-8") as fh:
            _json.dump(tuned.search_trace, fh, sort_keys=True, indent=2)
            fh.write("\n")
        print(f"trace      : {len(tuned.search_trace)} step(s) written to "
              f"{args.trace_out}")
    if args.verify:
        err = bundle.max_abs_err(exe(bundle.binding))
        print(f"max |err|  : {err:.3e} (vs dense reference)")
        return 0 if err < VERIFY_TOLERANCE else 1
    return 0


def cmd_serve(args) -> int:
    """Run the HTTP compile/simulate front end (see docs/serving.md).

    SIGTERM and SIGINT trigger a graceful drain: stop admitting new
    requests (503, ``/healthz`` reports ``draining``), let in-flight ones
    finish up to ``--drain-timeout`` seconds, then exit.
    """
    import signal
    import threading

    from .serve import make_server

    server = make_server(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        quiet=args.quiet,
        deadline=args.deadline,
        max_inflight=args.max_inflight,
    )
    host, port = server.server_address[:2]
    cache = server.state.disk_cache
    where = cache.root if cache is not None else "none (in-memory only)"
    print(f"fuseflow serve listening on http://{host}:{port}")
    print(f"persistent compile cache: {where}")

    def _drain(signum, frame):  # noqa: ARG001 - signal API
        # Drain from a helper thread: shutdown() must not be called from
        # the thread running serve_forever(), and a signal handler runs
        # on exactly that (main) thread.
        print(
            f"\nreceived {signal.Signals(signum).name}; draining "
            f"(up to {args.drain_timeout:g}s for in-flight requests)"
        )
        threading.Thread(
            target=server.drain, args=(args.drain_timeout,), daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    try:
        server.serve_forever()
        print("drained; shutting down")
    finally:
        server.server_close()
    return 0


def cmd_compile(args) -> int:
    bundle = _build_model(args)
    session = _session(args)
    schedule = bundle.schedule(args.fusion)
    schedule.splits = _parse_splits(args.split)
    exe = session.compile(bundle.program, schedule)
    print(exe.compiled.describe())
    if args.diagnostics:
        print()
        print(exe.diagnostics.describe())
    if args.show_graph:
        for region in exe.regions:
            print()
            print(region.graph.describe())
    if args.show_table:
        for region in exe.regions:
            print()
            print(region.table_text)
    return 0


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fuseflow",
        description="FuseFlow reproduction: compile sparse DL models to dataflow",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="compile, simulate, and verify one schedule")
    _add_model_args(p_run)
    p_run.add_argument("--fusion", default="partial", choices=["unfused", "partial", "full", "cs"])
    p_run.add_argument("--par", action="append", help="index=factor parallelization")
    p_run.set_defaults(fn=cmd_run)

    p_sim = sub.add_parser(
        "simulate", help="simulate one schedule (--profile for hot-spot triage)"
    )
    _add_model_args(p_sim)
    p_sim.add_argument("--fusion", default="partial", choices=["unfused", "partial", "full", "cs"])
    p_sim.add_argument("--par", action="append", help="index=factor parallelization")
    p_sim.add_argument("--profile", action="store_true",
                       help="print the top-k busiest nodes (node_busy/node_finish)")
    p_sim.add_argument("--top", type=int, default=8, help="rows shown by --profile")
    p_sim.add_argument("--legacy-streams", action="store_true",
                       help="use the legacy tuple-list stream interpreter")
    p_sim.add_argument("--debug-streams", action="store_true",
                       help="validate the token protocol on every stream")
    p_sim.add_argument("--no-sim-cache", action="store_true",
                       help="disable functional/timed result memoization")
    p_sim.set_defaults(fn=cmd_simulate)

    p_sweep = sub.add_parser(
        "sweep", help="parallel experiment sweeps over the design space"
    )
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)

    p_sw_run = sweep_sub.add_parser(
        "run",
        help="execute a (model x dataset x schedule x machine x hierarchy "
             "x splits x backend) grid",
    )
    p_sw_run.add_argument("--name", default="grid", help="sweep name for reports")
    p_sw_run.add_argument("--spec", help="JSON SweepSpec file (overrides grid flags)")
    p_sw_run.add_argument("--models", default="gcn,sae",
                          help="comma-separated models")
    p_sw_run.add_argument("--datasets", default=None,
                          help="comma-separated Table-2 dataset names (default: synthetic)")
    p_sw_run.add_argument("--schedules", default="unfused,partial,full",
                          help="comma-separated fusion granularities")
    p_sw_run.add_argument("--machines", default="rda,fpga",
                          help="comma-separated timing models")
    p_sw_run.add_argument("--hierarchies", default=None,
                          help="comma-separated memory-hierarchy presets "
                               "(default: flat; preset@bytes overrides SRAM "
                               "capacity)")
    p_sw_run.add_argument("--splits", action="append", metavar="CONFIG",
                          help="index-splitting axis: each flag is one "
                               "config ('x1=8' or 'x1=8,x7=8'; 'none' for "
                               "the unsplit baseline), gridded against "
                               "every other axis; repeatable")
    p_sw_run.add_argument("--backends", default=None,
                          help="comma-separated execution backends "
                               "(interp, columnar, codegen; 'default' for "
                               "the session default), gridded against "
                               "every other axis")
    p_sw_run.add_argument("--pipeline", action="append",
                          help="comma-separated pass names; repeatable for variants")
    p_sw_run.add_argument("--baseline", default="unfused",
                          help="schedule speedups are reported against")
    p_sw_run.add_argument("--nodes", type=int, default=None, help="graph nodes / SAE dim")
    p_sw_run.add_argument("--density", type=float, default=None, help="graph density")
    p_sw_run.add_argument("--hidden", type=int, default=None, help="hidden width")
    p_sw_run.add_argument("--seq-len", type=int, default=None, help="GPT-3 sequence length")
    p_sw_run.add_argument("--d-model", type=int, default=None, help="GPT-3 model width")
    p_sw_run.add_argument("--block", type=int, default=None, help="GPT-3 attention block")
    p_sw_run.add_argument("--seed", type=int, default=None, help="synthetic data seed")
    p_sw_run.add_argument("--par", action="append", help="index=factor parallelization")
    p_sw_run.add_argument("--workers", type=int, default=None,
                          help="worker processes (default: cpu-based)")
    p_sw_run.add_argument("--out", default=None, help="JSONL results file")
    p_sw_run.add_argument("--force", action="store_true",
                          help="overwrite an existing results file")
    p_sw_run.add_argument("--quiet", action="store_true", help="no per-point progress")
    p_sw_run.add_argument("--cache-dir", default=None,
                          help="persistent compile-cache directory shared by "
                               "all workers (default: $FUSEFLOW_CACHE_DIR)")
    p_sw_run.add_argument("--point-timeout", type=float, default=None,
                          metavar="SECONDS",
                          help="per-point wall-clock timeout; a hung worker "
                               "is killed and the point retried, then "
                               "quarantined as a 'timeout' record (parallel "
                               "runs only; default: none)")
    p_sw_run.add_argument("--max-attempts", type=int, default=None,
                          metavar="N",
                          help="attempts per point before a crashing/hanging/"
                               "transiently-failing point is quarantined "
                               "with a terminal record (default: 3)")
    p_sw_run.set_defaults(fn=cmd_sweep_run)

    p_sw_resume = sweep_sub.add_parser(
        "resume", help="continue a sweep, skipping completed points"
    )
    p_sw_resume.add_argument("--out", required=True, help="JSONL results file")
    p_sw_resume.add_argument("--workers", type=int, default=None)
    p_sw_resume.add_argument("--quiet", action="store_true")
    p_sw_resume.add_argument("--cache-dir", default=None,
                             help="persistent compile-cache directory shared "
                                  "by all workers")
    p_sw_resume.add_argument("--point-timeout", type=float, default=None,
                             metavar="SECONDS",
                             help="per-point wall-clock timeout (see sweep run)")
    p_sw_resume.add_argument("--max-attempts", type=int, default=None,
                             metavar="N",
                             help="attempts per point before quarantine")
    p_sw_resume.set_defaults(fn=cmd_sweep_resume)

    p_sw_report = sweep_sub.add_parser(
        "report", help="summarize a results file (text / JSON / BENCH json)"
    )
    p_sw_report.add_argument("--out", required=True, help="JSONL results file")
    p_sw_report.add_argument("--baseline", default=None,
                             help="override the baseline schedule")
    p_sw_report.add_argument("--json", default=None, help="write JSON summary here")
    p_sw_report.add_argument("--bench-json", default=None,
                             help="write BENCH_*.json here ('auto' for default name)")
    p_sw_report.set_defaults(fn=cmd_sweep_report)

    p_sw_quick = sweep_sub.add_parser(
        "quick",
        help="compare fusion granularities for one model (one point per "
             "granularity; --split applies to all — see `sweep run` for "
             "the full grid and `tune` for guided search)",
    )
    _add_model_args(p_sw_quick)
    p_sw_quick.set_defaults(fn=cmd_sweep_quick)

    p_serve = sub.add_parser(
        "serve", help="HTTP compile/simulate service over a shared session"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=8177,
                         help="bind port (0 picks an ephemeral port)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="persistent compile-cache directory "
                              "(default: $FUSEFLOW_CACHE_DIR)")
    p_serve.add_argument("--quiet", action="store_true",
                         help="suppress per-request access logs")
    p_serve.add_argument("--deadline", type=float, default=None,
                         metavar="SECONDS",
                         help="per-request response deadline; requests not "
                              "answered in time get HTTP 504 (the compile "
                              "keeps running and warms the cache; default: "
                              "no deadline)")
    p_serve.add_argument("--max-inflight", type=int, default=None,
                         metavar="N",
                         help="cap on concurrent POSTs; excess requests are "
                              "shed with HTTP 503 + Retry-After instead of "
                              "queueing (default: unbounded)")
    p_serve.add_argument("--drain-timeout", type=float, default=10.0,
                         metavar="SECONDS",
                         help="on SIGTERM/SIGINT, wait up to this long for "
                              "in-flight requests before exiting "
                              "(default: 10)")
    p_serve.set_defaults(fn=cmd_serve)

    p_est = sub.add_parser("estimate", help="rank schedules with the heuristic")
    _add_model_args(p_est)
    p_est.set_defaults(fn=cmd_estimate)

    p_tune = sub.add_parser(
        "autotune", help="search fusion schedules (heuristic prune + simulate)"
    )
    _add_model_args(p_tune)
    p_tune.add_argument("--simulate-top", type=int, default=3,
                        help="simulate the k best-estimated candidates")
    p_tune.add_argument("--max-candidates", type=int, default=64,
                        help="cap on enumerated fusion partitions")
    p_tune.add_argument("--verify", action="store_true",
                        help="run the winner and check against the dense reference")
    p_tune.set_defaults(fn=cmd_autotune)

    p_guided = sub.add_parser(
        "tune",
        help="guided schedule search (beam/evolutionary/exhaustive) under "
             "a simulation budget, optionally cost-model calibrated",
    )
    _add_model_args(p_guided)
    p_guided.add_argument("--strategy", default="beam",
                          choices=sorted(SEARCH_STRATEGIES),
                          help="search strategy (default: beam)")
    p_guided.add_argument("--budget", type=int, default=6,
                          help="cap on *successful* simulations — infeasible "
                               "candidates are skipped without consuming it "
                               "(default: 6)")
    p_guided.add_argument("--seed", type=int, default=0,
                          help="search seed; identical invocations produce "
                               "identical traces (default: 0)")
    p_guided.add_argument("--cost-model", default=None, metavar="PATH",
                          help="calibrated cost-model JSON artifact to load "
                               "(or to write, when combined with "
                               "--calibrate)")
    p_guided.add_argument("--calibrate", default=None, metavar="PATH",
                          help="fit the cost model from a sweep artifact "
                               "first: a ResultStore JSONL, a SweepSpec "
                               "JSON (executed in-process), or a BENCH "
                               "payload with embedded points")
    p_guided.add_argument("--max-candidates", type=int, default=64,
                          help="enumeration cap for the exhaustive strategy")
    p_guided.add_argument("--par", action="append", metavar="INDEX=FACTOR",
                          help="candidate parallelization configuration; "
                               "repeatable (each flag is one config the "
                               "search may toggle)")
    p_guided.add_argument("--trace-out", default=None, metavar="PATH",
                          help="write the JSON search trace here")
    p_guided.add_argument("--verify", action="store_true",
                          help="run the winner and check against the dense "
                               "reference")
    p_guided.set_defaults(fn=cmd_tune)

    p_compile = sub.add_parser("compile", help="compile and show graphs/tables")
    _add_model_args(p_compile)
    p_compile.add_argument("--fusion", default="partial", choices=["unfused", "partial", "full", "cs"])
    p_compile.add_argument("--show-graph", action="store_true")
    p_compile.add_argument("--show-table", action="store_true")
    p_compile.add_argument("--diagnostics", action="store_true",
                           help="print per-pass timings and region stats")
    p_compile.set_defaults(fn=cmd_compile)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
