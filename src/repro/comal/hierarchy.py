"""Two-level memory hierarchy: on-chip SRAM buffers over the HBM port.

The flat :class:`~repro.comal.memory.MemoryModel` makes every materialized
tensor a DRAM round trip, so fused and unfused schedules differ only in
*how much* traffic they generate — capacity effects are invisible.  This
module adds the missing level: a configurable on-chip buffer
(:class:`BufferLevel`) with a byte capacity, a bank count, and per-bank
bandwidth/latency, combined with the existing DRAM parameters into a
:class:`HierarchySpec`.

Placement is decided at compile time by the ``place-memory`` pass
(:class:`repro.driver.passes.PlaceMemory`): intermediates that cross fusion
regions are kept in the on-chip buffer while capacity lasts, and *spill* to
DRAM once it runs out; reads of a spilled intermediate are *fills*.  The
timed engine (:mod:`repro.comal.engine`) then paces each node's traffic
through the level it was placed in and reports per-level byte counts in
:class:`~repro.comal.engine.SimResult`.

The ``flat`` hierarchy (no SRAM level) reproduces the pre-hierarchy
simulator bit for bit: every placement request falls through to DRAM, and
the only new information is the spill/fill classification of cross-region
traffic.

Examples
--------
>>> spec = resolve_hierarchy("fpga-small")
>>> spec.sram.capacity_bytes
8192
>>> resolve_hierarchy("fpga-small@65536").sram.capacity_bytes
65536
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union


@dataclass(frozen=True)
class BufferLevel:
    """One on-chip buffer level: capacity, banking, and port timing.

    Parameters
    ----------
    capacity_bytes:
        Total bytes of on-chip storage available to resident tensors.
        Placement stops admitting intermediates once their (dense-estimate)
        footprints exhaust this budget.
    banks:
        Number of independently ported banks.  Tensors map to banks by a
        stable hash of their name; traffic within one bank serializes
        against that bank's bandwidth while different banks proceed in
        parallel.
    bandwidth:
        Sustained bytes per cycle *per bank*.
    latency:
        Cycles from request to data for an on-chip access (pipeline fill,
        not per-beat).
    """

    capacity_bytes: int
    banks: int = 1
    bandwidth: float = 32.0
    latency: float = 2.0

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be >= 0")
        if self.banks < 1:
            raise ValueError("banks must be >= 1")
        if self.bandwidth <= 0:
            raise ValueError("bandwidth must be > 0")

    def bank_of(self, tensor_name: str) -> int:
        """Stable bank assignment for ``tensor_name`` (crc32, not ``hash``)."""
        return zlib.crc32(tensor_name.encode("utf-8")) % self.banks


@dataclass(frozen=True)
class HierarchySpec:
    """A named memory hierarchy: optional SRAM buffer level over DRAM.

    Parameters
    ----------
    name:
        Registry name (``flat``, ``fpga-small``, ...); surfaced in
        ``SimResult.hierarchy`` and sweep labels.
    sram:
        The on-chip buffer level, or ``None`` for a flat (DRAM-only)
        hierarchy.  DRAM parameters stay on the
        :class:`~repro.comal.machines.Machine` so existing machine
        configurations keep their meaning.
    """

    name: str = "flat"
    sram: Optional[BufferLevel] = None

    @property
    def has_sram(self) -> bool:
        """True when this hierarchy has a usable on-chip level."""
        return self.sram is not None and self.sram.capacity_bytes > 0

    def config(self) -> Tuple:
        """Hashable parameterization, folded into pipeline fingerprints."""
        if self.sram is None:
            return (self.name,)
        return (
            self.name,
            self.sram.capacity_bytes,
            self.sram.banks,
            self.sram.bandwidth,
            self.sram.latency,
        )

    def scaled(self, **overrides) -> "HierarchySpec":
        """A copy with selected :class:`BufferLevel` fields replaced.

        Parameters
        ----------
        **overrides:
            ``BufferLevel`` field overrides (``capacity_bytes``, ``banks``,
            ``bandwidth``, ``latency``).  The name gains a ``@capacity``
            suffix when the capacity changes, so sweep labels stay unique.

        Returns
        -------
        HierarchySpec
            The derived hierarchy.

        Raises
        ------
        ValueError
            If called on a flat hierarchy (there is no level to scale).
        """
        if self.sram is None:
            raise ValueError(f"hierarchy {self.name!r} has no SRAM level to scale")
        sram = replace(self.sram, **overrides)
        name = self.name
        if sram.capacity_bytes != self.sram.capacity_bytes:
            base = name.split("@", 1)[0]
            name = f"{base}@{sram.capacity_bytes}"
        return HierarchySpec(name=name, sram=sram)

    def describe(self) -> str:
        """One-line human-readable summary."""
        if not self.has_sram:
            return f"{self.name}: DRAM only"
        s = self.sram
        return (
            f"{self.name}: {s.capacity_bytes} B SRAM, {s.banks} bank(s) x "
            f"{s.bandwidth:g} B/cyc, {s.latency:g} cyc latency, over DRAM"
        )


#: The no-on-chip-level hierarchy: bit-identical to the pre-hierarchy
#: simulator.  Every intermediate "spills", which is exactly what the flat
#: DRAM model always charged.
FLAT_HIERARCHY = HierarchySpec(name="flat", sram=None)

#: Named presets.  Capacities are clock-normalized stand-ins sized against
#: this reproduction's synthetic workloads (KB-scale tensors), not absolute
#: device numbers: ``fpga-*`` model BRAM-like buffers (few banks, modest
#: per-bank bandwidth, a few cycles of access latency), ``asic-*`` model
#: wider banked scratchpads with single-cycle access.
HIERARCHIES: Dict[str, HierarchySpec] = {
    "flat": FLAT_HIERARCHY,
    "fpga-small": HierarchySpec(
        "fpga-small", BufferLevel(capacity_bytes=8 << 10, banks=2, bandwidth=16.0, latency=3.0)
    ),
    "fpga-large": HierarchySpec(
        "fpga-large", BufferLevel(capacity_bytes=64 << 10, banks=4, bandwidth=32.0, latency=3.0)
    ),
    "asic-small": HierarchySpec(
        "asic-small", BufferLevel(capacity_bytes=32 << 10, banks=4, bandwidth=64.0, latency=1.0)
    ),
    "asic-large": HierarchySpec(
        "asic-large", BufferLevel(capacity_bytes=256 << 10, banks=8, bandwidth=64.0, latency=1.0)
    ),
}


def resolve_hierarchy(
    value: Union[str, HierarchySpec, None],
) -> HierarchySpec:
    """Resolve a hierarchy argument to a :class:`HierarchySpec`.

    Parameters
    ----------
    value:
        ``None`` (the flat hierarchy), an existing spec (returned as-is), a
        preset name from :data:`HIERARCHIES`, or ``"preset@bytes"`` — a
        preset with its SRAM capacity overridden, which is how sweeps grid
        over buffer sizes (e.g. ``fpga-small@16384``).

    Returns
    -------
    HierarchySpec

    Raises
    ------
    ValueError
        For unknown preset names or malformed capacity overrides.
    """
    if value is None:
        return FLAT_HIERARCHY
    if isinstance(value, HierarchySpec):
        return value
    name, sep, cap = value.partition("@")
    spec = HIERARCHIES.get(name)
    if spec is None:
        raise ValueError(
            f"unknown hierarchy {name!r}; known: {sorted(HIERARCHIES)} "
            "(optionally with @capacity_bytes, e.g. 'fpga-small@16384')"
        )
    if not sep:
        return spec
    try:
        capacity = int(cap)
    except ValueError:
        raise ValueError(
            f"bad capacity override in {value!r}: {cap!r} is not an integer"
        ) from None
    if spec.sram is None:
        raise ValueError(f"hierarchy {name!r} is flat; cannot override capacity")
    return spec.scaled(capacity_bytes=capacity)


def dense_estimate_bytes(shape: Tuple[int, ...], fmt=None) -> int:
    """Compile-time footprint estimate for placement decisions.

    The placement pass cannot see runtime sparsity, so it budgets the
    worst case: 8 bytes per (possibly blocked) element of the dense shape.
    Conservative by design — a tensor admitted on-chip is guaranteed to
    fit, while an over-estimate only costs a spill that the flat model
    would have charged anyway.

    Parameters
    ----------
    shape:
        Level shape of the tensor (blocked tensors: blocks per mode).
    fmt:
        Optional :class:`~repro.ftree.format.Format`; blocked formats
        multiply in the block element count.

    Returns
    -------
    int
        Estimated bytes.
    """
    total = 8
    for extent in shape:
        total *= int(extent)
    if fmt is not None and getattr(fmt, "is_blocked", False):
        for extent in fmt.block_shape:
            total *= int(extent)
    return total
