"""HBM-like memory model (Ramulator 2.0 stand-in).

Models off-chip memory as a shared resource with a fixed access latency and a
bandwidth-limited service rate.  Requests are serialized through the shared
port: a request arriving while the port is busy waits, which is how unfused
pipelines that bounce intermediates through DRAM lose to fused ones.

The model is deliberately simple — row-buffer effects are folded into an
effective bandwidth — but preserves the two behaviors the evaluation relies
on: (1) a latency floor per access chain and (2) a bandwidth roofline on
total traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemoryModel:
    """Shared DRAM port with bandwidth/latency accounting.

    Attributes
    ----------
    bandwidth:
        Sustained bytes per cycle across the whole device.
    latency:
        Cycles from request issue to first data beat.
    burst_bytes:
        Minimum transfer granularity; small requests round up.
    """

    bandwidth: float = 64.0
    latency: float = 100.0
    burst_bytes: int = 32
    next_free: float = field(default=0.0, init=False)
    total_bytes: int = field(default=0, init=False)
    total_requests: int = field(default=0, init=False)

    def reset(self) -> None:
        self.next_free = 0.0
        self.total_bytes = 0
        self.total_requests = 0

    def access(self, arrival: float, nbytes: int) -> float:
        """Serve a request of ``nbytes`` arriving at ``arrival``.

        Returns the cycle at which the data is available to the requester.
        """
        nbytes = max(int(nbytes), 0)
        if nbytes == 0:
            return arrival
        burst = max(nbytes, self.burst_bytes)
        start = max(arrival, self.next_free)
        service = burst / self.bandwidth
        self.next_free = start + service
        self.total_bytes += nbytes
        self.total_requests += 1
        return start + service + self.latency

    def drain_time(self) -> float:
        """Cycle at which all queued traffic has been serviced."""
        return self.next_free

    def roofline_cycles(self, nbytes: int) -> float:
        """Minimum cycles to move ``nbytes`` at full bandwidth."""
        return nbytes / self.bandwidth
