"""Machine models: per-primitive timing tables for the simulator backends.

A :class:`Machine` assigns each primitive timing class an initiation interval
(cycles per token at steady state) and a pipeline latency, plus DRAM
parameters.  Three machines are provided:

``RDA_MACHINE``
    The default reconfigurable-dataflow-accelerator model used for the main
    evaluation (the Comal configuration of the paper).
``FPGA_MACHINE``
    An independently parameterized model standing in for the paper's
    post-synthesis Xilinx VU9P RTL simulation (Section 8.2): slower
    clock-normalized scanners/joiners and BRAM-like memory.  Used only for
    the Figure 13 correlation study.
``GPU_MACHINE``
    A throughput-oriented model with wide vector lanes and high-latency
    memory, used by the Figure 1 utilization motivation experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Union

from .hierarchy import (
    FLAT_HIERARCHY,
    HIERARCHIES,
    HierarchySpec,
    resolve_hierarchy,
)
from .memory import MemoryModel


@dataclass(frozen=True)
class Machine:
    """Timing parameterization of one dataflow backend."""

    name: str
    ii: Dict[str, float] = field(default_factory=dict)
    latency: Dict[str, float] = field(default_factory=dict)
    default_ii: float = 1.0
    default_latency: float = 1.0
    dram_bandwidth: float = 64.0
    dram_latency: float = 100.0
    vector_width: int = 16
    # Peak ALU throughput (FLOPs/cycle) used for utilization reporting.
    peak_flops_per_cycle: float = 64.0
    # On-chip scratchpad capacity for operand residency.
    scratchpad_bytes: int = 1 << 16
    # Memory hierarchy: the flat default is the pre-hierarchy DRAM-only
    # model; named presets add an on-chip buffer level (see
    # repro.comal.hierarchy.HIERARCHIES and Machine.with_hierarchy).
    hierarchy: HierarchySpec = FLAT_HIERARCHY

    def ii_of(self, timing_class: str) -> float:
        return self.ii.get(timing_class, self.default_ii)

    def latency_of(self, timing_class: str) -> float:
        return self.latency.get(timing_class, self.default_latency)

    def memory(self) -> MemoryModel:
        return MemoryModel(bandwidth=self.dram_bandwidth, latency=self.dram_latency)

    def scaled(self, **overrides) -> "Machine":
        """Return a copy with selected fields replaced."""
        return replace(self, **overrides)

    def with_hierarchy(self, hierarchy: Union[str, HierarchySpec]) -> "Machine":
        """A copy of this machine running a named (or explicit) hierarchy.

        Accepts everything :func:`~repro.comal.hierarchy.resolve_hierarchy`
        does: a preset name (``"fpga-small"``), a capacity-overridden preset
        (``"fpga-small@16384"``), or a :class:`HierarchySpec`.

        A hierarchy with an SRAM level also pins ``scratchpad_bytes`` (the
        functional layer's operand-residency budget) to the same capacity:
        the machine has exactly one on-chip storage size, so a machine
        modeled with 8 KiB of SRAM must not keep a 64 KiB operand-staging
        discount.  Operand staging and intermediate residency share the
        budget rather than being jointly accounted — a documented
        approximation (see ``docs/memory.md``).
        """
        spec = resolve_hierarchy(hierarchy)
        if spec.has_sram:
            return replace(
                self, hierarchy=spec, scratchpad_bytes=spec.sram.capacity_bytes
            )
        if (
            self.hierarchy.has_sram
            and self.scratchpad_bytes == self.hierarchy.sram.capacity_bytes
        ):
            # Moving back to flat un-pins a scratchpad a previous
            # with_hierarchy pinned, so flat-vs-flat comparisons stay
            # bit-identical.  (A custom scratchpad set before pinning is
            # not recoverable; the field default is the flat baseline.)
            default = type(self).__dataclass_fields__["scratchpad_bytes"].default
            return replace(self, hierarchy=spec, scratchpad_bytes=default)
        return replace(self, hierarchy=spec)


RDA_MACHINE = Machine(
    name="rda",
    ii={
        "scan": 1.0,
        "locate": 2.0,
        "intersect": 1.0,
        "union": 1.0,
        "repeat": 1.0,
        "repsig": 1.0,
        "alu": 1.0,
        "ualu": 1.0,
        "array": 1.0,
        "reduce": 1.0,
        "vreduce": 1.0,
        "crddrop": 1.0,
        "aligncheck": 1.0,
        "write": 1.0,
        "softmax": 2.0,
        "layernorm": 2.0,
        "root": 1.0,
        "source": 1.0,
    },
    latency={
        "scan": 2.0,
        "locate": 4.0,
        "intersect": 2.0,
        "union": 2.0,
        "repeat": 1.0,
        "alu": 2.0,
        "ualu": 2.0,
        "array": 4.0,
        "reduce": 2.0,
        "vreduce": 4.0,
        "write": 2.0,
        "softmax": 8.0,
        "layernorm": 8.0,
    },
    dram_bandwidth=64.0,
    dram_latency=100.0,
    vector_width=16,
    peak_flops_per_cycle=64.0,
)

FPGA_MACHINE = Machine(
    name="fpga",
    ii={
        "scan": 2.0,
        "locate": 3.0,
        "intersect": 2.0,
        "union": 2.0,
        "repeat": 1.0,
        "repsig": 1.0,
        "alu": 1.0,
        "ualu": 2.0,
        "array": 2.0,
        "reduce": 1.0,
        "vreduce": 2.0,
        "crddrop": 1.0,
        "aligncheck": 1.0,
        "write": 2.0,
        "softmax": 4.0,
        "layernorm": 4.0,
    },
    latency={
        "scan": 4.0,
        "locate": 8.0,
        "intersect": 5.0,
        "union": 5.0,
        "repeat": 2.0,
        "alu": 5.0,
        "ualu": 6.0,
        "array": 2.0,
        "reduce": 4.0,
        "vreduce": 8.0,
        "write": 4.0,
        "softmax": 16.0,
        "layernorm": 16.0,
    },
    # Kernels chosen for validation fit in on-chip BRAM (paper Section 8.2).
    dram_bandwidth=32.0,
    dram_latency=4.0,
    vector_width=8,
    peak_flops_per_cycle=32.0,
)

GPU_MACHINE = Machine(
    name="gpu",
    default_ii=1.0,
    default_latency=4.0,
    dram_bandwidth=512.0,
    dram_latency=400.0,
    vector_width=32,
    peak_flops_per_cycle=1024.0,
)

MACHINES = {m.name: m for m in (RDA_MACHINE, FPGA_MACHINE, GPU_MACHINE)}

#: Re-exported hierarchy presets so machine configuration is one import:
#: ``MACHINES["rda"].with_hierarchy("fpga-small")``.
__all__ = [
    "Machine",
    "MACHINES",
    "RDA_MACHINE",
    "FPGA_MACHINE",
    "GPU_MACHINE",
    "HIERARCHIES",
    "HierarchySpec",
    "resolve_hierarchy",
]
