"""Per-node simulation traces and bottleneck reports.

Post-processes a :class:`~repro.comal.engine.SimResult` into the per-node
views a microarchitect wants from a cycle-level simulator: which nodes bind
the pipeline, how busy each primitive class is, and a Chrome-trace JSON
export for visual inspection (chrome://tracing / Perfetto).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..sam.graph import SAMGraph
from .engine import SimResult


@dataclass
class NodeReport:
    """Timing summary of one dataflow node."""

    node_id: str
    kind: str
    region: str
    index_var: Optional[str]
    busy_cycles: float
    finish_cycle: float
    tokens_out: int
    utilization: float  # busy / total graph cycles


def node_reports(graph: SAMGraph, result: SimResult) -> List[NodeReport]:
    """Per-node timing reports, sorted by busy cycles (bottleneck first)."""
    total = max(result.cycles, 1e-9)
    reports = []
    for node_id, node in graph.nodes.items():
        stats = result.functional.stats.get(node_id) if result.functional else None
        reports.append(
            NodeReport(
                node_id=node_id,
                kind=node.prim.kind,
                region=node.region,
                index_var=node.index_var,
                busy_cycles=result.node_busy.get(node_id, 0.0),
                finish_cycle=result.node_finish.get(node_id, 0.0),
                tokens_out=stats.tokens_out if stats else 0,
                utilization=result.node_busy.get(node_id, 0.0) / total,
            )
        )
    reports.sort(key=lambda r: r.busy_cycles, reverse=True)
    return reports


def bottleneck(graph: SAMGraph, result: SimResult) -> NodeReport:
    """The node binding the pipeline's throughput."""
    return node_reports(graph, result)[0]


def busy_by_class(graph: SAMGraph, result: SimResult) -> Dict[str, float]:
    """Aggregate busy cycles per primitive timing class."""
    out: Dict[str, float] = {}
    for report in node_reports(graph, result):
        out[report.kind] = out.get(report.kind, 0.0) + report.busy_cycles
    return out


def chrome_trace(graph: SAMGraph, result: SimResult) -> str:
    """Chrome-trace (trace-event) JSON of the node activity intervals.

    Each node appears as a complete event spanning (finish - busy, finish) on
    a track named by its graph region — a coarse but readable picture of the
    pipelined execution.
    """
    events = []
    for report in node_reports(graph, result):
        start = max(report.finish_cycle - report.busy_cycles, 0.0)
        events.append(
            {
                "name": f"{report.node_id} ({report.kind})",
                "cat": report.region,
                "ph": "X",
                "ts": start,
                "dur": max(report.busy_cycles, 0.01),
                "pid": 0,
                "tid": {"iterate": 1, "compute": 2, "construct": 3}.get(
                    report.region, 4
                ),
                "args": {
                    "index_var": report.index_var,
                    "tokens": report.tokens_out,
                },
            }
        )
    return json.dumps({"traceEvents": events}, indent=1)


def render_report(graph: SAMGraph, result: SimResult, top: int = 10) -> str:
    """Human-readable bottleneck table."""
    lines = [
        f"simulation report: {result.cycles:.0f} cycles, "
        f"{result.flops} flops, {result.dram_bytes} DRAM bytes",
        f"{'node':28s} {'kind':10s} {'region':10s} {'busy':>10s} {'util':>7s}",
    ]
    for report in node_reports(graph, result)[:top]:
        lines.append(
            f"{report.node_id:28s} {report.kind:10s} {report.region:10s} "
            f"{report.busy_cycles:10.0f} {report.utilization * 100:6.1f}%"
        )
    return "\n".join(lines)
