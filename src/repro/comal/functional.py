"""Functional (untimed) executor for SAMML graphs.

Evaluates every node of a graph in topological order, producing the exact
token streams of the SAM protocol.  This layer defines functional
correctness; the timed executor in :mod:`repro.comal.engine` replays the
same streams through a machine timing model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Tuple

from ..sam.graph import SAMGraph
from ..sam.primitives.base import ExecutionContext, NodeStats


@dataclass
class FunctionalResult:
    """Streams and statistics from one functional execution."""

    streams: Dict[Tuple[str, str], list] = field(default_factory=dict)
    stats: Dict[str, NodeStats] = field(default_factory=dict)
    results: Dict[str, Any] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)

    def stream(self, node_id: str, port: str = "out") -> list:
        return self.streams[(node_id, port)]

    def total_ops(self) -> int:
        return sum(s.ops for s in self.stats.values())

    def total_dram_bytes(self) -> int:
        return sum(s.dram_reads + s.dram_writes for s in self.stats.values())

    def total_tokens(self) -> int:
        return sum(s.tokens_out for s in self.stats.values())


def run_functional(
    graph: SAMGraph,
    binding: Dict[str, Any],
    scratchpad_bytes: int = 1 << 16,
) -> FunctionalResult:
    """Execute ``graph`` functionally with tensors bound by name."""
    graph.validate()
    ctx = ExecutionContext(binding, scratchpad_bytes=scratchpad_bytes)
    result = FunctionalResult()
    order = graph.topological_order()
    result.order = order
    for node_id in order:
        node = graph.nodes[node_id]
        ins = {}
        for port_name, src in node.inputs.items():
            key = (src.node_id, src.port)
            if key not in result.streams:
                raise RuntimeError(
                    f"node {node_id} consumes {key} before it is produced"
                )
            ins[port_name] = result.streams[key]
        stats = ctx.stats_for(node_id)
        outs = node.prim.process(ins, ctx, stats)
        for port_name, stream in outs.items():
            result.streams[(node_id, port_name)] = stream
    result.stats = ctx.stats
    result.results = ctx.results
    return result
