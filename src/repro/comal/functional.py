"""Functional (untimed) executor for SAMML graphs.

Evaluates every node of a graph in topological order, producing the exact
token streams of the SAM protocol.  This layer defines functional
correctness; the timed executor in :mod:`repro.comal.engine` replays the
same streams through a machine timing model.

Two stream representations are supported:

* **columnar** (default): streams are
  :class:`~repro.sam.token.TokenStream` structure-of-arrays and primitives
  run their vectorized ``process_columnar`` kernels;
* **legacy**: streams are tuple lists and primitives run their per-token
  ``process`` loops.  Selected with ``columnar=False`` or the
  ``FUSEFLOW_LEGACY_STREAMS=1`` environment variable.

Both paths produce identical streams, statistics, and results — the
differential tests in ``tests/test_columnar_differential.py`` enforce this
model by model.

Per-stream protocol validation (``check_stream``) costs a pass over every
produced stream, so it is gated behind ``debug_streams=True`` (or
``FUSEFLOW_DEBUG_STREAMS=1``); the test suite turns it on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..backend.base import resolve_backend_name
from ..sam.graph import SAMGraph
from ..sam.primitives.base import ExecutionContext, NodeStats
from ..sam.token import StreamProtocolError, check_stream

_TRUTHY = ("1", "true", "yes", "on")


def default_columnar() -> bool:
    """Columnar streams unless FUSEFLOW_LEGACY_STREAMS is set."""
    return os.environ.get("FUSEFLOW_LEGACY_STREAMS", "").lower() not in _TRUTHY


def default_debug_streams() -> bool:
    """Per-stream protocol checks only when FUSEFLOW_DEBUG_STREAMS is set."""
    return os.environ.get("FUSEFLOW_DEBUG_STREAMS", "").lower() in _TRUTHY


def default_sim_cache() -> bool:
    """Result memoization unless FUSEFLOW_NO_SIM_CACHE is set."""
    return os.environ.get("FUSEFLOW_NO_SIM_CACHE", "").lower() not in _TRUTHY


#: Entries kept per graph in the functional/timed memo (a sweep touches a
#: handful of bindings per graph at most; executions dominate).
_CACHE_ENTRIES = 4


def _binding_key(graph: SAMGraph, binding: Dict[str, Any]) -> Optional[Tuple]:
    """Identity key of the tensors this graph reads, or None if unbound.

    Functional execution is a pure function of the graph and the bound
    tensor *objects* (tensors are immutable once built), so object identity
    is a sound memo key as long as the entry pins the tensors alive.
    """
    names = graph.input_tensor_names()
    try:
        return tuple(id(binding[name]) for name in names)
    except KeyError:
        return None


@dataclass
class FunctionalResult:
    """Streams and statistics from one functional execution."""

    streams: Dict[Tuple[str, str], Any] = field(default_factory=dict)
    stats: Dict[str, NodeStats] = field(default_factory=dict)
    results: Dict[str, Any] = field(default_factory=dict)
    order: List[str] = field(default_factory=list)

    def stream(self, node_id: str, port: str = "out"):
        return self.streams[(node_id, port)]

    def total_ops(self) -> int:
        return sum(s.ops for s in self.stats.values())

    def total_dram_bytes(self) -> int:
        return sum(s.dram_reads + s.dram_writes for s in self.stats.values())

    def total_tokens(self) -> int:
        return sum(s.tokens_out for s in self.stats.values())


def run_functional(
    graph: SAMGraph,
    binding: Dict[str, Any],
    scratchpad_bytes: int = 1 << 16,
    *,
    backend: Optional[str] = None,
    columnar: Optional[bool] = None,
    debug_streams: Optional[bool] = None,
    cache: Optional[bool] = None,
) -> FunctionalResult:
    """Execute ``graph`` functionally with tensors bound by name.

    ``backend`` names the execution backend (``"interp"``, ``"columnar"``,
    or ``"codegen"``); ``columnar`` is the pre-backend spelling that
    selects between the two interpreter representations.  When both are
    ``None`` the ``FUSEFLOW_BACKEND`` / ``FUSEFLOW_LEGACY_STREAMS``
    environment defaults apply (see
    :func:`repro.backend.base.resolve_backend_name`).  ``debug_streams``
    enables per-stream protocol validation (``None`` reads
    ``FUSEFLOW_DEBUG_STREAMS``).  Validation of the graph structure itself
    happens once per graph object — the compile pipeline validates at
    compile time, so cached executables pay nothing here.

    ``cache`` memoizes the result per (tensor identities, scratchpad, mode):
    functional execution is machine-independent apart from the scratchpad
    size, so schedule sweeps and repeated executions of a cached
    ``Executable`` skip re-simulation entirely (``FUSEFLOW_NO_SIM_CACHE=1``
    or ``cache=False`` disables).  Bound tensors are treated as immutable.
    """
    mode = resolve_backend_name(backend, columnar)
    if debug_streams is None:
        debug_streams = default_debug_streams()
    if cache is None:
        cache = default_sim_cache()
    memo_key = None
    if cache:
        ids = _binding_key(graph, binding)
        if ids is not None:
            memo_key = (scratchpad_bytes, mode, debug_streams, ids)
            memo = graph.func_cache
            if memo is not None:
                entry = memo.get(memo_key)
                if entry is not None:
                    return entry[0]
    graph.ensure_validated()
    if mode == "codegen":
        from ..backend.codegen import try_run_codegen

        result = try_run_codegen(
            graph, binding, scratchpad_bytes, debug_streams
        )
        if result is not None:
            return _memoize(graph, binding, memo_key, result)
        # Region uses a primitive the emitter does not support: fall back
        # to the columnar interpreter for this graph (recorded in the
        # region's RegionArtifact.fallback).
    columnar = mode != "interp"
    ctx = ExecutionContext(
        binding, scratchpad_bytes=scratchpad_bytes, debug_streams=debug_streams
    )
    result = FunctionalResult()
    order = graph.topological_order()
    result.order = order
    for node_id in order:
        node = graph.nodes[node_id]
        ins = {}
        for port_name, src in node.inputs.items():
            key = (src.node_id, src.port)
            if key not in result.streams:
                raise RuntimeError(
                    f"node {node_id} consumes {key} before it is produced"
                )
            ins[port_name] = result.streams[key]
        stats = ctx.stats_for(node_id)
        ctx.current_node = node_id
        if columnar:
            outs = node.prim.process_columnar(ins, ctx, stats)
        else:
            outs = node.prim.process(ins, ctx, stats)
        for port_name, stream in outs.items():
            if debug_streams and len(stream):
                try:
                    check_stream(stream)
                except StreamProtocolError as exc:
                    raise StreamProtocolError(
                        f"node {node_id} port {port_name!r}: {exc}"
                    ) from exc
            result.streams[(node_id, port_name)] = stream
    result.stats = ctx.stats
    result.results = ctx.results
    return _memoize(graph, binding, memo_key, result)


def _memoize(
    graph: SAMGraph,
    binding: Dict[str, Any],
    memo_key: Optional[Tuple],
    result: FunctionalResult,
) -> FunctionalResult:
    """Store ``result`` in the graph's functional memo (if enabled)."""
    if memo_key is not None:
        memo = graph.func_cache
        if memo is None:
            memo = graph.func_cache = {}
        # Pin the bound tensors so the id()-based key stays valid.
        memo[memo_key] = (
            result,
            [binding[n] for n in graph.input_tensor_names()],
        )
        while len(memo) > _CACHE_ENTRIES:
            memo.pop(next(iter(memo)))
    return result
