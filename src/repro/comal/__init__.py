"""Comal-like dataflow simulator: functional + timed execution, memory, machines."""

from .engine import SimResult, run_timed
from .functional import FunctionalResult, run_functional
from .hierarchy import (
    FLAT_HIERARCHY,
    HIERARCHIES,
    BufferLevel,
    HierarchySpec,
    resolve_hierarchy,
)
from .machines import FPGA_MACHINE, GPU_MACHINE, MACHINES, RDA_MACHINE, Machine
from .memory import MemoryModel
from .metrics import ProgramMetrics, format_table, speedup_table
from .trace import bottleneck, busy_by_class, chrome_trace, node_reports, render_report

__all__ = [
    "run_functional",
    "run_timed",
    "FunctionalResult",
    "SimResult",
    "Machine",
    "RDA_MACHINE",
    "FPGA_MACHINE",
    "GPU_MACHINE",
    "MACHINES",
    "MemoryModel",
    "BufferLevel",
    "HierarchySpec",
    "HIERARCHIES",
    "FLAT_HIERARCHY",
    "resolve_hierarchy",
    "ProgramMetrics",
    "speedup_table",
    "format_table",
    "node_reports",
    "bottleneck",
    "busy_by_class",
    "chrome_trace",
    "render_report",
]
