"""Timed executor: fully pipelined dataflow timing over functional streams.

Comal "models the architectural behavior of each IR node and tracks cycles
based on fully pipelined dataflow graphs" (paper Section 8.1).  This engine
follows that model: every node is a pipelined unit with a per-token
initiation interval (II) and a pipeline latency taken from a
:class:`~repro.comal.machines.Machine`; token timestamps propagate along
topological order with rate-based dependency tracking, and DRAM-touching
nodes route their traffic through a shared bandwidth/latency
:class:`~repro.comal.memory.MemoryModel`.

The result is a cycle count for the whole graph (the time the last token —
and the last memory write — lands), plus per-node busy/finish accounting used
for utilization reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sam.graph import SAMGraph
from .functional import FunctionalResult, run_functional
from .machines import Machine, RDA_MACHINE
from .memory import MemoryModel


@dataclass
class SimResult:
    """Outcome of one timed simulation of a SAMML graph."""

    cycles: float
    flops: int
    dram_bytes: int
    tokens: int
    node_finish: Dict[str, float] = field(default_factory=dict)
    node_busy: Dict[str, float] = field(default_factory=dict)
    functional: Optional[FunctionalResult] = None
    machine_name: str = "rda"

    @property
    def results(self) -> Dict[str, Any]:
        """Tensors produced by writer nodes."""
        return self.functional.results if self.functional else {}

    def _check_cycles(self) -> None:
        if self.cycles < 0:
            raise ValueError(
                f"SimResult has negative cycle count {self.cycles}; this is "
                "a simulator bug (timestamps must be non-negative), not a "
                "utilization of zero"
            )

    def compute_utilization(self, machine: Machine) -> float:
        """Achieved FLOPs/cycle over peak — the Figure 1 "SM util" proxy."""
        self._check_cycles()
        if self.cycles == 0:
            return 0.0
        return self.flops / (self.cycles * machine.peak_flops_per_cycle)

    def memory_utilization(self, machine: Machine) -> float:
        """Achieved DRAM bytes/cycle over peak bandwidth."""
        self._check_cycles()
        if self.cycles == 0:
            return 0.0
        return self.dram_bytes / (self.cycles * machine.dram_bandwidth)

    def operational_intensity(self) -> float:
        """FLOPs per DRAM byte."""
        return self.flops / self.dram_bytes if self.dram_bytes else float("inf")


def _emission_schedule(
    driver: List[float],
    length: int,
    ii: float,
    start: float,
) -> List[float]:
    """Timestamps of ``length`` emissions paced by ``ii`` and input arrivals."""
    times: List[float] = []
    n_in = len(driver)
    prev = start
    for k in range(length):
        if n_in:
            dep = driver[min(n_in - 1, (k * n_in) // length)]
        else:
            dep = start
        t = max(prev + ii, dep)
        times.append(t)
        prev = t
    return times


def run_timed(
    graph: SAMGraph,
    binding: Dict[str, Any],
    machine: Machine = RDA_MACHINE,
    functional: FunctionalResult | None = None,
    memory: MemoryModel | None = None,
) -> SimResult:
    """Run the timed simulation of ``graph`` on ``machine``.

    A pre-computed functional result may be supplied to avoid re-executing
    the graph; a shared memory model may be supplied to model contention
    across graphs that run concurrently.
    """
    func = (
        functional
        if functional is not None
        else run_functional(graph, binding, scratchpad_bytes=machine.scratchpad_bytes)
    )
    mem = memory if memory is not None else machine.memory()

    port_times: Dict[Tuple[str, str], List[float]] = {}
    node_finish: Dict[str, float] = {}
    node_busy: Dict[str, float] = {}

    for node_id in func.order:
        node = graph.nodes[node_id]
        tclass = node.prim.timing_class()
        par = max(node.par_factor, 1)
        ii = machine.ii_of(tclass) / par
        lat = machine.latency_of(tclass)
        stats = func.stats.get(node_id)

        in_arrays = [
            port_times[(src.node_id, src.port)] for src in node.inputs.values()
        ]
        in_arrays = [a for a in in_arrays if a]
        driver = max(in_arrays, key=len) if in_arrays else []
        start = driver[0] if driver else 0.0

        out_ports = {
            port: stream
            for (nid, port), stream in func.streams.items()
            if nid == node_id
        }
        max_len = max((len(s) for s in out_ports.values()), default=0)

        schedule = _emission_schedule(driver, max_len, ii, start)

        # Pace DRAM traffic: each node streams its traffic at full device
        # bandwidth (requests pipeline, latency overlaps); aggregate
        # contention is enforced by the global bandwidth roofline below.
        dram_bytes = (stats.dram_reads + stats.dram_writes) if stats else 0
        if dram_bytes and schedule:
            per_token = dram_bytes / len(schedule)
            paced: List[float] = []
            prev = 0.0
            for t in schedule:
                served = max(t, prev + per_token / mem.bandwidth)
                paced.append(served + mem.latency)
                prev = served
            schedule = paced
            mem.total_bytes += dram_bytes
        elif dram_bytes:
            # No output tokens (pure writer): stream the traffic at the end.
            arrival = driver[-1] if driver else 0.0
            node_finish[node_id] = arrival + dram_bytes / mem.bandwidth + mem.latency
            mem.total_bytes += dram_bytes

        for port, stream in out_ports.items():
            n = len(stream)
            if n == max_len:
                times = [t + lat for t in schedule]
            elif n == 0:
                times = []
            else:
                times = [
                    schedule[min(max_len - 1, (k * max_len) // n)] + lat
                    for k in range(n)
                ]
            port_times[(node_id, port)] = times

        busy = max_len * ii
        node_busy[node_id] = busy
        finish_candidates = [node_finish.get(node_id, 0.0)]
        if schedule:
            finish_candidates.append(schedule[-1] + lat)
        if driver:
            finish_candidates.append(driver[-1] + ii)
        node_finish[node_id] = max(finish_candidates)

    cycles = max(node_finish.values(), default=0.0)
    # Global bandwidth roofline: all DRAM traffic shares one device.
    cycles = max(cycles, mem.total_bytes / mem.bandwidth)
    return SimResult(
        cycles=cycles,
        flops=func.total_ops(),
        dram_bytes=func.total_dram_bytes(),
        tokens=func.total_tokens(),
        node_finish=node_finish,
        node_busy=node_busy,
        functional=func,
        machine_name=machine.name,
    )
