"""Timed executor: fully pipelined dataflow timing over functional streams.

Comal "models the architectural behavior of each IR node and tracks cycles
based on fully pipelined dataflow graphs" (paper Section 8.1).  This engine
follows that model: every node is a pipelined unit with a per-token
initiation interval (II) and a pipeline latency taken from a
:class:`~repro.comal.machines.Machine`; token timestamps propagate along
topological order with rate-based dependency tracking, and DRAM-touching
nodes route their traffic through a shared bandwidth/latency
:class:`~repro.comal.memory.MemoryModel`.

The result is a cycle count for the whole graph (the time the last token —
and the last memory write — lands), plus per-node busy/finish accounting used
for utilization reporting.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..sam.graph import SAMGraph
from .functional import FunctionalResult, default_sim_cache, run_functional
from .machines import Machine, RDA_MACHINE
from .memory import MemoryModel


@dataclass
class SimResult:
    """Outcome of one timed simulation of a SAMML graph.

    ``dram_bytes`` counts traffic served by the off-chip level only;
    ``sram_bytes`` counts traffic absorbed by the on-chip buffer (zero
    under the flat hierarchy).  ``spill_bytes``/``fill_bytes`` classify the
    DRAM share: writes of cross-region intermediates that did not fit
    on-chip, and the reads bringing them back.  Compulsory input/output
    traffic is DRAM traffic that is neither spill nor fill.
    """

    cycles: float
    flops: int
    dram_bytes: int
    tokens: int
    node_finish: Dict[str, float] = field(default_factory=dict)
    node_busy: Dict[str, float] = field(default_factory=dict)
    functional: Optional[FunctionalResult] = None
    machine_name: str = "rda"
    # Per-level traffic accounting (see repro.comal.hierarchy).
    sram_bytes: int = 0
    spill_bytes: int = 0
    fill_bytes: int = 0
    hierarchy: str = "flat"

    @property
    def results(self) -> Dict[str, Any]:
        """Tensors produced by writer nodes."""
        return self.functional.results if self.functional else {}

    def _check_cycles(self) -> None:
        if self.cycles < 0:
            raise ValueError(
                f"SimResult has negative cycle count {self.cycles}; this is "
                "a simulator bug (timestamps must be non-negative), not a "
                "utilization of zero"
            )

    def compute_utilization(self, machine: Machine) -> float:
        """Achieved FLOPs/cycle over peak — the Figure 1 "SM util" proxy."""
        self._check_cycles()
        if self.cycles == 0:
            return 0.0
        return self.flops / (self.cycles * machine.peak_flops_per_cycle)

    def memory_utilization(self, machine: Machine) -> float:
        """Achieved DRAM bytes/cycle over peak bandwidth."""
        self._check_cycles()
        if self.cycles == 0:
            return 0.0
        return self.dram_bytes / (self.cycles * machine.dram_bandwidth)

    def operational_intensity(self) -> float:
        """FLOPs per DRAM byte."""
        return self.flops / self.dram_bytes if self.dram_bytes else float("inf")


#: Below this length the pure-Python recurrences win: a handful of numpy
#: array allocations cost more than a few dozen loop iterations.  Above it
#: the ``np.maximum.accumulate`` closed forms take over.
_VECTOR_THRESHOLD = 96


def _emission_schedule(
    driver,
    length: int,
    ii: float,
    start: float,
):
    """Timestamps of ``length`` emissions paced by ``ii`` and input arrivals.

    Implements the recurrence ``t[k] = max(t[k-1] + ii, dep[k])`` (with
    ``t[-1] = start``).  Long schedules use the closed form: subtracting the
    ``ii``-ramp turns the running dependency into a prefix maximum, so the
    whole schedule is one ``np.maximum.accumulate`` instead of a per-token
    Python loop; short schedules stay in Python where numpy's fixed
    per-call cost dominates.
    """
    n_in = len(driver)
    if length < _VECTOR_THRESHOLD:
        times = []
        append = times.append
        prev = start
        for k in range(length):
            # (k * n_in) // length < n_in for every k < length, so no clamp.
            dep = driver[(k * n_in) // length] if n_in else start
            t = prev + ii
            if dep > t:
                t = dep
            append(t)
            prev = t
        return times
    k = np.arange(length, dtype=np.float64)
    if n_in:
        idx = np.minimum(
            n_in - 1, (np.arange(length, dtype=np.int64) * n_in) // length
        )
        dep = np.asarray(driver, dtype=np.float64)[idx]
    else:
        dep = np.full(length, start, dtype=np.float64)
    ramp = ii * k
    return np.maximum(start + ii * (k + 1.0), ramp + np.maximum.accumulate(dep - ramp))


def _paced_times(times, step: float, latency: float):
    """DRAM pacing ``served[k] = max(times[k], served[k-1] + step)`` + latency.

    (``served[-1] = 0``.)  Same adaptive strategy as
    :func:`_emission_schedule`: Python recurrence for short schedules, the
    ramp-subtraction closed form for long ones.
    """
    if len(times) < _VECTOR_THRESHOLD:
        out = []
        append = out.append
        prev = 0.0
        for t in times:
            served = prev + step
            if t > served:
                served = t
            append(served + latency)
            prev = served
        return out
    k = np.arange(len(times), dtype=np.float64)
    ramp = step * k
    served = np.maximum(
        step * (k + 1.0), ramp + np.maximum.accumulate(np.asarray(times) - ramp)
    )
    return served + latency


def _tiled_times(times, tiles: int, bubble: float):
    """Re-pace an emission schedule as ``tiles`` tile-sequential passes.

    Index splitting (see :mod:`repro.core.schedule.split`) executes a node's
    token stream in ``tiles`` back-to-back passes; every tile boundary
    costs one pipeline fill/drain ``bubble``.  Token ``k`` of ``n`` belongs
    to tile ``k * tiles // n`` and is pushed back by that many bubbles —
    offsets are non-decreasing, so the schedule stays monotone and the
    last token lands ``(tiles - 1) * bubble`` later than untiled.
    """
    n = len(times)
    if n < _VECTOR_THRESHOLD:
        return [t + bubble * ((k * tiles) // n) for k, t in enumerate(times)]
    k = np.arange(n, dtype=np.int64)
    return np.asarray(times, dtype=np.float64) + bubble * ((k * tiles) // n)


#: Shared empty out-port map (avoids allocating one per portless node).
_NO_PORTS: Dict[str, Any] = {}

#: Per-graph timing plans: node id, timing class, input port keys, and the
#: node object (read live for its parallel factor).  Keyed weakly by graph;
#: invalidated by identity of the topological-order list, which the graph
#: rebuilds on any structural change.
_PLAN_CACHE: "weakref.WeakKeyDictionary[SAMGraph, Tuple[Any, List[Tuple]]]" = (
    weakref.WeakKeyDictionary()
)


def _timing_plan(graph: SAMGraph, order: List[str]) -> List[Tuple]:
    cached = _PLAN_CACHE.get(graph)
    if cached is not None and cached[0] is order:
        return cached[1]
    plan = []
    for node_id in order:
        node = graph.nodes[node_id]
        in_keys = tuple(src.key() for src in node.inputs.values())
        # Placement metadata is written once at compile time by the
        # place-memory pass; hand-built graphs default to flat DRAM.
        plan.append(
            (
                node_id,
                node.prim.timing_class(),
                in_keys,
                node,
                node.meta.get("mem_level", "dram"),
                node.meta.get("mem_role", "io"),
                node.meta.get("mem_bank", 0),
            )
        )
    _PLAN_CACHE[graph] = (order, plan)
    return plan


def run_timed(
    graph: SAMGraph,
    binding: Dict[str, Any],
    machine: Machine = RDA_MACHINE,
    functional: FunctionalResult | None = None,
    memory: MemoryModel | None = None,
    *,
    backend: Optional[str] = None,
    columnar: Optional[bool] = None,
    debug_streams: Optional[bool] = None,
    cache: Optional[bool] = None,
) -> SimResult:
    """Run the timed simulation of ``graph`` on ``machine``.

    A pre-computed functional result may be supplied to avoid re-executing
    the graph; a shared memory model may be supplied to model contention
    across graphs that run concurrently.  ``backend``/``columnar``/
    ``debug_streams`` select the execution backend, stream representation,
    and protocol checking of the
    functional execution (see :func:`~repro.comal.functional.run_functional`).

    Timing is a pure function of the functional result and the machine, so
    when neither ``functional`` nor ``memory`` is supplied the result is
    memoized alongside the functional memo (``cache``, default on; disable
    with ``FUSEFLOW_NO_SIM_CACHE=1``).  A shared ``memory`` model always
    bypasses the memo — its cross-graph contention state is a side effect.
    """
    if cache is None:
        cache = default_sim_cache()
    tkey = None
    if functional is None:
        func = run_functional(
            graph,
            binding,
            scratchpad_bytes=machine.scratchpad_bytes,
            backend=backend,
            columnar=columnar,
            debug_streams=debug_streams,
            cache=cache,
        )
        if cache and memory is None:
            tkey = (id(func), id(machine))
            memo = graph.timed_cache
            if memo is not None:
                entry = memo.get(tkey)
                if entry is not None:
                    return entry[0]
    else:
        func = functional
    mem = memory if memory is not None else machine.memory()
    # On-chip buffer level: nodes the place-memory pass marked "sram" are
    # paced through their bank instead of the DRAM port.  A machine without
    # an SRAM level serves every placement from DRAM (the placement is a
    # request, the machine is the authority).
    hier = machine.hierarchy
    sram = hier.sram if hier.has_sram else None
    sram_total = 0
    spill_total = 0
    fill_total = 0
    bank_bytes: Dict[int, int] = {}

    port_times: Dict[Tuple[str, str], Any] = {}
    node_finish: Dict[str, float] = {}
    node_busy: Dict[str, float] = {}

    # Group output streams by producing node once — the per-node dict
    # comprehension over *all* streams was quadratic in graph size.
    streams_by_node: Dict[str, Dict[str, Any]] = {}
    for (nid, port), stream in func.streams.items():
        streams_by_node.setdefault(nid, {})[port] = stream

    for (
        node_id,
        tclass,
        in_keys,
        par_node,
        mem_level,
        mem_role,
        mem_bank,
    ) in _timing_plan(graph, func.order):
        par = par_node.par_factor
        ii = machine.ii_of(tclass) / (par if par > 1 else 1)
        lat = machine.latency_of(tclass)
        tiles = par_node.tile_factor
        stats = func.stats.get(node_id)

        driver = ()
        n_driver = 0
        for key in in_keys:
            arr = port_times[key]
            if len(arr) > n_driver:
                driver = arr
                n_driver = len(arr)
        start = float(driver[0]) if n_driver else 0.0

        out_ports = streams_by_node.get(node_id, _NO_PORTS)
        max_len = max((len(s) for s in out_ports.values()), default=0)

        schedule = _emission_schedule(driver, max_len, ii, start)
        if tiles > 1 and max_len:
            # Tile-sequential execution (index splitting): the stream runs
            # in `tiles` passes, each boundary costing one pipeline
            # fill/drain (latency to refill + one II to restart).
            schedule = _tiled_times(schedule, tiles, lat + ii)

        # Pace memory traffic through the level this node was placed in.
        # Each node streams at full port bandwidth (requests pipeline,
        # latency overlaps); aggregate contention is enforced by the
        # per-level rooflines below.
        traffic = (stats.dram_reads + stats.dram_writes) if stats else 0
        on_chip = traffic and sram is not None and mem_level == "sram"
        if on_chip:
            port_bw, port_lat = sram.bandwidth, sram.latency
        else:
            port_bw, port_lat = mem.bandwidth, mem.latency
        if traffic and max_len:
            per_token = traffic / max_len
            schedule = _paced_times(schedule, per_token / port_bw, port_lat)
        elif traffic:
            # No output tokens (pure writer): stream the traffic at the end.
            # Writers sit in the construct region, which apply_split leaves
            # un-tiled — the merging serializer drains continuously across
            # tile boundaries — so no per-tile term belongs here.
            arrival = float(driver[-1]) if n_driver else 0.0
            node_finish[node_id] = arrival + traffic / port_bw + port_lat
        if traffic:
            if on_chip:
                sram_total += traffic
                bank_bytes[mem_bank] = bank_bytes.get(mem_bank, 0) + traffic
            else:
                mem.total_bytes += traffic
                # Classify the DRAM share of cross-region intermediates:
                # an intermediate that did not stay on-chip is written out
                # (spill) by its producer and read back (fill) by its
                # consumers.  "intermediate" placements demoted here (SRAM
                # requested, machine has none) classify by direction.
                if mem_role == "spill" or (
                    mem_role == "intermediate" and stats.dram_writes
                ):
                    spill_total += traffic
                elif mem_role == "fill" or mem_role == "intermediate":
                    fill_total += traffic

        for port, stream in out_ports.items():
            n = len(stream)
            if n == max_len:
                if isinstance(schedule, list):
                    times = [t + lat for t in schedule]
                else:
                    times = schedule + lat
            elif n == 0:
                times = ()
            elif n < _VECTOR_THRESHOLD:
                times = [schedule[(k * max_len) // n] + lat for k in range(n)]
            else:
                idx = np.minimum(
                    max_len - 1, (np.arange(n, dtype=np.int64) * max_len) // n
                )
                times = np.asarray(schedule)[idx] + lat
            port_times[(node_id, port)] = times

        busy = max_len * ii
        node_busy[node_id] = busy
        finish = node_finish.get(node_id, 0.0)
        if max_len:
            finish = max(finish, float(schedule[-1]) + lat)
        if n_driver:
            finish = max(finish, float(driver[-1]) + ii)
        node_finish[node_id] = finish

    cycles = max(node_finish.values(), default=0.0)
    # Global bandwidth rooflines: all DRAM traffic shares one device, and
    # each SRAM bank serializes the traffic of the tensors it holds.
    cycles = max(cycles, mem.total_bytes / mem.bandwidth)
    if sram is not None and bank_bytes:
        cycles = max(cycles, max(bank_bytes.values()) / sram.bandwidth)
    result = SimResult(
        cycles=cycles,
        flops=func.total_ops(),
        dram_bytes=func.total_dram_bytes() - sram_total,
        tokens=func.total_tokens(),
        node_finish=node_finish,
        node_busy=node_busy,
        functional=func,
        machine_name=machine.name,
        sram_bytes=sram_total,
        spill_bytes=spill_total,
        fill_bytes=fill_total,
        hierarchy=hier.name,
    )
    if tkey is not None:
        memo = graph.timed_cache
        if memo is None:
            memo = graph.timed_cache = {}
        # Pin func and machine so the id()-based key stays valid.
        memo[tkey] = (result, func, machine)
        while len(memo) > 8:
            memo.pop(next(iter(memo)))
    return result
