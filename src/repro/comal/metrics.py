"""Aggregated program metrics across multi-kernel executions.

A compiled model is a sequence of SAMML graphs (one per fusion region); this
module accumulates their simulation results into program-level metrics and
provides the derived quantities the paper's figures report (speedups,
operational intensity, utilization percentages).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .engine import SimResult
from .machines import Machine


@dataclass
class ProgramMetrics:
    """Cycles/FLOPs/bytes accumulated over the kernels of one program.

    ``dram_bytes`` counts off-chip traffic only; ``sram_bytes`` counts
    traffic absorbed by the on-chip buffer level, and
    ``spill_bytes``/``fill_bytes`` classify the DRAM share caused by
    cross-region intermediates (see :mod:`repro.comal.hierarchy`).  Under
    the flat hierarchy ``sram_bytes`` is zero and ``dram_bytes`` matches
    the pre-hierarchy accounting exactly.
    """

    label: str = "program"
    cycles: float = 0.0
    flops: int = 0
    dram_bytes: int = 0
    tokens: int = 0
    sram_bytes: int = 0
    spill_bytes: int = 0
    fill_bytes: int = 0
    kernel_cycles: List[float] = field(default_factory=list)
    kernel_labels: List[str] = field(default_factory=list)

    def add(self, result: SimResult, label: str = "") -> None:
        """Accumulate one kernel's :class:`SimResult` into this program."""
        self.cycles += result.cycles
        self.flops += result.flops
        self.dram_bytes += result.dram_bytes
        self.tokens += result.tokens
        self.sram_bytes += result.sram_bytes
        self.spill_bytes += result.spill_bytes
        self.fill_bytes += result.fill_bytes
        self.kernel_cycles.append(result.cycles)
        self.kernel_labels.append(label or f"kernel{len(self.kernel_cycles)}")

    @property
    def num_kernels(self) -> int:
        return len(self.kernel_cycles)

    def operational_intensity(self) -> float:
        """FLOPs per off-chip (DRAM) byte."""
        return self.flops / self.dram_bytes if self.dram_bytes else float("inf")

    def traffic_by_level(self) -> Dict[str, int]:
        """Byte traffic per memory level, plus the spill/fill breakdown.

        Returns
        -------
        dict
            ``{"dram": ..., "sram": ..., "spill": ..., "fill": ...}`` where
            spill/fill are subsets of the DRAM total, not extra traffic.
        """
        return {
            "dram": self.dram_bytes,
            "sram": self.sram_bytes,
            "spill": self.spill_bytes,
            "fill": self.fill_bytes,
        }

    def _check_cycles(self) -> None:
        if self.cycles < 0:
            raise ValueError(
                f"ProgramMetrics has negative cycle count {self.cycles}; "
                "this is a simulator bug, not a utilization of zero"
            )

    def compute_utilization(self, machine: Machine) -> float:
        self._check_cycles()
        if self.cycles == 0:
            return 0.0
        return self.flops / (self.cycles * machine.peak_flops_per_cycle)

    def memory_utilization(self, machine: Machine) -> float:
        self._check_cycles()
        if self.cycles == 0:
            return 0.0
        return self.dram_bytes / (self.cycles * machine.dram_bandwidth)

    def speedup_over(self, baseline: "ProgramMetrics") -> float:
        """Baseline cycles / our cycles (``> 1`` means we are faster)."""
        if self.cycles <= 0:
            return float("inf")
        return baseline.cycles / self.cycles


def speedup_table(
    metrics: Dict[str, ProgramMetrics], baseline: str
) -> Dict[str, float]:
    """Speedups of each configuration relative to ``baseline``."""
    base = metrics[baseline]
    return {name: m.speedup_over(base) if name != baseline else 1.0
            for name, m in metrics.items()}


def format_table(rows: List[List[str]], header: List[str]) -> str:
    """Render a fixed-width text table (used by benchmark reports)."""
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: List[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)
