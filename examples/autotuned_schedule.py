"""Autoscheduling: search fusion granularities automatically.

The paper exposes fusion granularity as a user schedule and leaves
autoscheduling as future work (Section 4.2); this example composes the
shipped ingredients — the contiguous-partition schedule space and the
analytical FLOPs/bytes heuristic (Section 7) — into a working autotuner,
then inspects the winner with the per-node simulation trace.

Run:  python examples/autotuned_schedule.py
"""

import numpy as np

from repro.comal import RDA_MACHINE, render_report, run_timed
from repro.core.heuristic.model import stats_from_binding
from repro.core.schedule.autotune import autotune
from repro.models.graphsage import graphsage_on_synthetic
from repro.driver import Session

session = Session()

bundle = graphsage_on_synthetic(nodes=60, density=0.06, seed=0)
print(f"model: {bundle.name}, {len(bundle.program.statements)} statements")

stats = stats_from_binding(bundle.binding)
tuned = autotune(
    bundle.program,
    bundle.binding,
    stats,
    candidates=bundle.schedules(),  # unfused / partial / full
    simulate_top=3,
)
print(
    f"\nautotuner: considered {tuned.candidates_considered} candidates, "
    f"simulated {tuned.candidates_simulated}"
)
for name, cycles in tuned.ranking:
    print(f"  {name:14s} {cycles:10.0f} cycles")
print(f"winner: {tuned.best.name} at {tuned.measured_cycles:.0f} cycles")

# Verify the winner and show where its cycles go.
result = session.run(bundle.program, bundle.binding, tuned.best)
out = result.tensors[bundle.output].to_dense()
assert np.abs(out - bundle.reference).max() < 1e-9

executable = session.compile(bundle.program, tuned.best)
print("\nbottleneck report for the winner's first region:")
region = executable.regions[0]
region_result = executable(bundle.binding).region_results[0]
print(render_report(region.graph, region_result, top=8))
