"""Author a custom fused sparse kernel and inspect every compiler stage.

Implements a fused SDDMM + row-softmax + SpMM pipeline (the core of any
sparse attention mechanism) directly at the Einsum level, then walks the
full compilation flow of paper Figure 6: fused Einsums + POG -> fusion
table -> SAMML graph -> simulation, including dataflow-order enumeration.

Run:  python examples/custom_dataflow_kernel.py
"""

import numpy as np

from repro import parse_program, fully_fused
from repro.comal import run_timed
from repro.core.fusion.fuse import fold_masks, fuse_region
from repro.core.fusion.orders import enumerate_orders
from repro.core.tables.lower import RegionLowerer
from repro.ftree import SparseTensor, csr, dense

N, D = 32, 8

program = parse_program(
    f"""
tensor Q({N}, {D}): dense
tensor Kt({N}, {D}): dense
tensor M({N}, {N}): csr
tensor V({N}, {D}): dense
P(i, j) = Q(i, d) * Kt(j, d)
S(i, j) = P(i, j) * M(i, j)
W(i, j) = softmax[j](S(i, j))
O(i, e) = W(i, j) * V(j, e)
""",
    name="sparse-attention",
)

# Stage (c): cross-expression fusion with the partial order graph.
fused = fold_masks(fuse_region(program, range(4), name="attention"))
print("fused Einsum statements (mask folded into the QK^T contraction):")
for stmt in fused.statements:
    print(f"  {stmt}")
print()
print(fused.pog.describe())
print()
print("fully fused Einsum:", fused.fused_einsum_string())
print()
print(f"valid dataflow orders: {fused.pog.count_orders()}")
for order in enumerate_orders(fused, limit=5):
    print(f"  {order}")

# Stage (d)+(e): fusion table and SAMML graph.
lowerer = RegionLowerer(fused, program.decls)
graph = lowerer.lower()
print()
print(lowerer.table.render())
print()
print(f"SAMML graph: {graph.node_count()} nodes")

# Simulate and verify against a dense reference.
rng = np.random.default_rng(0)
q = rng.random((N, D))
kt = rng.random((N, D))
v = rng.random((N, D))
m = (rng.random((N, N)) < 0.2) * 1.0
binding = {
    "Q": SparseTensor.from_dense(q, dense(2), "Q"),
    "Kt": SparseTensor.from_dense(kt, dense(2), "Kt"),
    "M": SparseTensor.from_dense(m, csr(), "M"),
    "V": SparseTensor.from_dense(v, dense(2), "V"),
}
result = run_timed(graph, binding)

scores = (q @ kt.T) * m
weights = np.zeros_like(scores)
for r in range(N):
    cols = np.nonzero(m[r])[0]
    if cols.size:
        e = np.exp(scores[r, cols] - scores[r, cols].max())
        weights[r, cols] = e / e.sum()
expected = weights @ v

error = np.abs(result.results["O"].to_dense() - expected).max()
print(f"cycles={result.cycles:.0f} flops={result.flops} bytes={result.dram_bytes}")
print(f"max |error| vs dense reference: {error:.2e}")
assert error < 1e-9
print("OK")
