"""Index splitting (tiling) on the BigBird GPT-3 block: spill -> on-chip.

Under a small on-chip buffer the block-sparse GPT-3 decoder's cross-region
intermediates are too big to stay resident: the `place-memory` pass spills
them to DRAM and charges a fill for every read-back.  Splitting their row
index into tiles shrinks the *resident* footprint — only one tile lives in
the buffer at a time — so the same schedule with `splits` set keeps them
on-chip.  This walkthrough:

1. compiles the partial schedule under the 8 KiB `fpga-small` hierarchy
   and shows the spill traffic,
2. derives the tiling recipe with `intermediate_row_splits` (tile the
   outer emission index of every cross-region intermediate),
3. sweeps tile counts, showing spill falling to the on-chip level while
   tile-boundary bubbles nudge cycles up, and
4. verifies every tiled run is bit-identical to the untiled one.

Run:  python examples/tiled_gpt3.py
"""

import numpy as np

from repro.comal.metrics import format_table
from repro.core.schedule.split import intermediate_row_splits
from repro.driver import Session
from repro.models.gpt3 import build_gpt3

bundle = build_gpt3(seq_len=16, d_model=8, block=4, n_layers=1, seed=0)
session = Session(hierarchy="fpga-small")
print(f"model: {bundle.name}, hierarchy: {session.machine.hierarchy.describe()}")

# 1. The untiled baseline: blocked intermediates exceed the 8 KiB buffer.
base_exe = session.compile(bundle.program, bundle.schedule("partial"))
base = base_exe(bundle.binding)
base_out = base.tensors[bundle.output].to_dense()
assert np.abs(base_out - bundle.reference).max() < 1e-6
levels = base.metrics.traffic_by_level()
print(f"\nuntiled traffic: {levels}")
assert levels["spill"] > 0, "expected the untiled schedule to spill"

# 2. The tiling recipe: split the outer row of every intermediate that
# crosses a region boundary.  Index names live in the unified per-region
# namespace; the helper reads them off the compiled regions.
splits = intermediate_row_splits(base_exe.compiled, 8)
print(f"tiling recipe (8 tiles per intermediate row): {splits}")

# 3. Sweep tile counts.  More tiles -> smaller resident footprints ->
# less spill; every tile boundary costs a pipeline fill/drain, so cycles
# creep up as tiling deepens.
rows = []
prev_spill = None
for tiles in (1, 2, 4, 8):
    schedule = bundle.schedule("partial")
    if tiles > 1:
        schedule.splits = intermediate_row_splits(base_exe.compiled, tiles)
    result = session.compile(bundle.program, schedule)(bundle.binding)
    m = result.metrics

    # 4. Tiling must not change a single bit of the functional results.
    out = result.tensors[bundle.output].to_dense()
    assert np.array_equal(out, base_out), f"tiles={tiles} diverged"

    if prev_spill is not None:
        assert m.spill_bytes <= prev_spill, "spill must shrink with tiling"
    prev_spill = m.spill_bytes
    rows.append(
        [
            str(tiles),
            f"{m.cycles:.0f}",
            str(m.dram_bytes),
            str(m.sram_bytes),
            str(m.spill_bytes),
            str(m.fill_bytes),
        ]
    )

print()
print(format_table(rows, ["tiles", "cycles", "dram", "sram", "spill", "fill"]))

best_spill = int(rows[-1][4])
untiled_spill = int(rows[0][4])
assert best_spill < untiled_spill
print(
    f"\n8-way tiling cut spill from {untiled_spill} to {best_spill} bytes "
    "(bit-identical results); the extra cycles are the tile-boundary "
    "fill/drain bubbles — the classic traffic-for-latency tradeoff the "
    "splits knob exposes."
)
