"""Quickstart: compile one sparse kernel with FuseFlow and simulate it.

Builds SpMM (the paper's Figure 9 running example) from Einsum text,
compiles it through the driver Session — cross-expression fusion + fusion
tables, run as a pass pipeline — into a SAMML dataflow graph, runs the
Comal-like simulator, and verifies against numpy.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Session, fully_fused, parse_program
from repro.ftree import SparseTensor, csr, dense

# 1. Write the kernel as Einsum statements with sparse format annotations.
program = parse_program(
    """
tensor A(64, 64): csr
tensor X(64, 16): dense
T(i, j) = A(i, k) * X(k, j)
""",
    name="spmm",
)

# 2. Compile under a schedule (a single fused region here) through a
#    Session.  The result is an Executable: callable, introspectable, and
#    cached by the program/schedule fingerprint.
session = Session()
exe = session.compile(program, fully_fused(program))
print(exe.compiled.describe())
print()
print("What each compiler pass did (order fallback, timings, skips):")
print(exe.diagnostics.describe())
print()
print("The fusion table the compiler planned (paper Section 6):")
print(exe.regions[0].table_text)
print()
print("The generated SAMML dataflow graph (paper Figure 9d):")
print(exe.regions[0].graph.describe())

# 3. Bind data and simulate by calling the executable.
rng = np.random.default_rng(0)
a = (rng.random((64, 64)) < 0.05) * rng.random((64, 64))
x = rng.random((64, 16))
binding = {
    "A": SparseTensor.from_dense(a, csr(), "A"),
    "X": SparseTensor.from_dense(x, dense(2), "X"),
}
result = exe(binding)

# 4. Inspect results and metrics.
out = result.tensors["T"].to_dense()
error = np.abs(out - a @ x).max()
metrics = result.metrics
print()
print(f"cycles            : {metrics.cycles:.0f}")
print(f"flops             : {metrics.flops}")
print(f"DRAM bytes        : {metrics.dram_bytes}")
print(f"operational intensity: {metrics.operational_intensity():.3f} flops/byte")
print(f"max |error| vs numpy : {error:.2e}")
assert error < 1e-9

# 5. Recompiling the same program+schedule is a cache hit — the session
#    hands back the very same Executable object.
assert session.compile(program, fully_fused(program)) is exe
print(f"compile cache     : {session.cache_info()}")
print("OK")
