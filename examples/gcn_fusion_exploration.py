"""Design-space exploration of fusion granularity for a GCN (paper Section 8.3).

Traces a 2-layer GCN over a synthetic citation-style graph with the
PyTorch-like frontend, then compares unfused / partially fused / fully
fused / Custard+Stardust-rewrite schedules on the dataflow simulator, and
shows the analytical heuristic ranking the same configurations without
simulation (Section 7).

Run:  python examples/gcn_fusion_exploration.py
"""

import numpy as np

from repro.comal import RDA_MACHINE
from repro.comal.metrics import format_table
from repro.core.heuristic.model import stats_from_binding
from repro.core.heuristic.prune import rank_schedules
from repro.models.gcn import gcn_on_synthetic
from repro.driver import Session

session = Session()

bundle = gcn_on_synthetic(nodes=120, density=0.05, pattern="powerlaw", seed=0)
print(f"model: {bundle.name}, {len(bundle.program.statements)} statements")
print(bundle.program)
print()

# Simulate every fusion granularity.
rows = []
baseline = None
results = {}
for granularity in ("unfused", "cs", "partial", "full"):
    schedule = bundle.schedule(granularity)
    result = session.run(bundle.program, bundle.binding, schedule)
    out = result.tensors[bundle.output].to_dense()
    assert np.abs(out - bundle.reference).max() < 1e-9, granularity
    metrics = result.metrics
    if baseline is None:
        baseline = metrics.cycles
    results[granularity] = metrics
    rows.append(
        [
            granularity,
            f"{metrics.cycles:.0f}",
            f"{baseline / metrics.cycles:.2f}x",
            f"{metrics.flops}",
            f"{metrics.dram_bytes}",
            f"{metrics.operational_intensity():.2f}",
        ]
    )
print(format_table(rows, ["schedule", "cycles", "speedup", "flops", "bytes", "flops/byte"]))
print()
print("Partial fusion wins for GCN: full fusion recomputes layer-1")
print("activations per layer-2 adjacency row (the fusion-recomputation")
print("tradeoff of Section 8.3).")
print()

# The heuristic predicts the same ordering without running the simulator.
stats = stats_from_binding(bundle.binding)
ranked = rank_schedules(bundle.program, bundle.schedules(), stats, RDA_MACHINE)
print("heuristic ranking (no simulation):")
for position, entry in enumerate(ranked, start=1):
    print(
        f"  {position}. {entry.schedule.name:12s} score={entry.score:10.0f} "
        f"est-flops={entry.estimate.flops:10.0f} est-bytes={entry.estimate.dram_bytes:10.0f}"
    )
best = ranked[0].schedule.name
actual = min(results, key=lambda g: results[g].cycles)
print(f"\nheuristic pick: {best}; simulator winner: {actual}")
