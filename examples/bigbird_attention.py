"""Block-sparse BigBird attention on streaming dataflow (paper Sections 8.6-8.7).

Builds a GPT-3-style decoder with BigBird block-sparse attention, shows the
SDDMM mask folding the compiler performs under fusion (the attention mask
gates the QK^T contraction *before* its reduction loop), and sweeps
parallelization factors over the generated dataflow graph.

Run:  python examples/bigbird_attention.py
"""

import numpy as np

from repro.comal.metrics import format_table
from repro.data.text import bigbird_mask, mask_sparsity
from repro.models.gpt3 import build_gpt3
from repro.driver import Session

session = Session()

SEQ, DMODEL, BLOCK = 64, 8, 8

mask = bigbird_mask(SEQ, BLOCK, seed=7)
print(f"BigBird mask: seq={SEQ} block={BLOCK} sparsity={mask_sparsity(mask) * 100:.1f}%")

bundle = build_gpt3(seq_len=SEQ, d_model=DMODEL, block=BLOCK, n_layers=1, seed=0)

# Show the SDDMM rewrite: in the fused attention region the mask operand is
# folded into the QK^T contraction (one statement instead of two).
compiled = session.compile(bundle.program, bundle.schedule("partial")).compiled
attention_region = compiled.regions[1]
print("\nfused attention region statements (mask folded into QK^T):")
for stmt in attention_region.fused.statements:
    print(f"  {stmt}")

# Compare fusion granularities.
rows = []
baseline = None
for granularity in ("unfused", "partial", "full"):
    result = session.run(bundle.program, bundle.binding, bundle.schedule(granularity))
    out = result.tensors[bundle.output].to_dense()
    assert np.abs(out - bundle.reference).max() < 1e-7
    cycles = result.metrics.cycles
    if baseline is None:
        baseline = cycles
    rows.append([granularity, f"{cycles:.0f}", f"{baseline / cycles:.2f}x"])
print()
print(format_table(rows, ["schedule", "cycles", "speedup"]))
print("\nFull fusion wins for GPT-3: reshape barriers bound the regions, so")
print("no recomputation is introduced (Figure 22d).")

# Parallelization sweep over the attention region (Section 8.6).  The sweep
# uses a compute-bound machine configuration (abundant DRAM bandwidth) so
# the duplicated compute subgraphs are the binding resource, as in the
# paper's parallelization study.
from repro.comal import RDA_MACHINE

compute_bound = RDA_MACHINE.scaled(dram_bandwidth=1e9, dram_latency=1.0)
print("\nparallelization sweep (attention region, outer block-row index):")
rows = []
base_cycles = None
for factor in (1, 2, 4, 8, 16):
    schedule = bundle.schedule("partial")
    schedule.par = {compiled.regions[1].order[0]: factor}
    result = session.run(bundle.program, bundle.binding, schedule, machine=compute_bound)
    cycles = result.region_results[1].cycles
    if base_cycles is None:
        base_cycles = cycles
    rows.append([str(factor), f"{cycles:.0f}", f"{base_cycles / cycles:.2f}x"])
print(format_table(rows, ["par factor", "cycles", "speedup"]))
